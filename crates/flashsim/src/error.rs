//! Flash operation errors.

use crate::addr::{Pbn, Ppn};
use std::fmt;

/// Errors returned by [`crate::FlashDevice`] operations.
///
/// These represent violations of the NAND programming model or addressing
/// mistakes by the layer above; a correct FTL/SSC never triggers them on a
/// healthy device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashError {
    /// The physical page number does not exist in this device geometry.
    PpnOutOfRange(Ppn),
    /// The physical block number does not exist in this device geometry.
    PbnOutOfRange(Pbn),
    /// Attempted to program a page that is not in the `Free` state.
    ProgramNotFree(Ppn),
    /// Attempted to program page `page` of a block whose next free slot is
    /// `expected`; NAND requires in-order programming within a block.
    ProgramOutOfOrder {
        /// The page that was requested.
        ppn: Ppn,
        /// The in-block page index that must be programmed next.
        expected: u32,
    },
    /// Attempted to read a page that has never been programmed since the last
    /// erase of its block.
    ReadFree(Ppn),
    /// The supplied data buffer does not match the device page size.
    BadPageSize {
        /// Bytes supplied by the caller.
        got: usize,
        /// The device page size.
        expected: usize,
    },
    /// The block has reached its erase endurance limit.
    WornOut(Pbn),
    /// An injected unrecoverable read failure: the page is a grown bad page
    /// until its block is erased.
    ReadFailed(Ppn),
    /// The device's ECC detected corruption in the page payload or OOB; the
    /// data is unrecoverable.
    ReadCorrupt(Ppn),
    /// An injected program failure: the target page is consumed and the
    /// write must be re-issued to a fresh page.
    ProgramFailed(Ppn),
    /// An injected erase failure: the block is now a grown bad block and
    /// must be retired.
    EraseFailed(Pbn),
}

impl FlashError {
    /// Whether this error is an injected media fault (as opposed to a
    /// programming-model violation by the layer above). Media faults call
    /// for graceful degradation — retire the block, re-issue the write,
    /// treat the read as a miss — rather than indicating a caller bug.
    pub fn is_media_fault(&self) -> bool {
        matches!(
            self,
            FlashError::WornOut(_)
                | FlashError::ReadFailed(_)
                | FlashError::ReadCorrupt(_)
                | FlashError::ProgramFailed(_)
                | FlashError::EraseFailed(_)
        )
    }
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::PpnOutOfRange(ppn) => write!(f, "physical page {ppn:?} out of range"),
            FlashError::PbnOutOfRange(pbn) => write!(f, "physical block {pbn:?} out of range"),
            FlashError::ProgramNotFree(ppn) => {
                write!(
                    f,
                    "program of non-free page {ppn:?} (erase-before-write violated)"
                )
            }
            FlashError::ProgramOutOfOrder { ppn, expected } => write!(
                f,
                "out-of-order program of {ppn:?}; next programmable page index is {expected}"
            ),
            FlashError::ReadFree(ppn) => write!(f, "read of erased page {ppn:?}"),
            FlashError::BadPageSize { got, expected } => {
                write!(
                    f,
                    "bad page buffer size: got {got} bytes, device page is {expected}"
                )
            }
            FlashError::WornOut(pbn) => write!(f, "block {pbn:?} exceeded erase endurance"),
            FlashError::ReadFailed(ppn) => {
                write!(f, "unrecoverable read failure on page {ppn:?}")
            }
            FlashError::ReadCorrupt(ppn) => {
                write!(f, "ECC-detected corruption reading page {ppn:?}")
            }
            FlashError::ProgramFailed(ppn) => write!(f, "program failure on page {ppn:?}"),
            FlashError::EraseFailed(pbn) => {
                write!(f, "erase failure on block {pbn:?} (grown bad block)")
            }
        }
    }
}

impl std::error::Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = FlashError::ProgramOutOfOrder {
            ppn: Ppn(12),
            expected: 3,
        };
        let s = e.to_string();
        assert!(s.contains("out-of-order"));
        assert!(s.contains('3'));
        assert!(FlashError::BadPageSize {
            got: 100,
            expected: 4096
        }
        .to_string()
        .contains("4096"));
        assert!(FlashError::ReadFree(Ppn(1)).to_string().contains("erased"));
        assert!(FlashError::WornOut(Pbn(2))
            .to_string()
            .contains("endurance"));
        assert!(FlashError::PpnOutOfRange(Ppn(9))
            .to_string()
            .contains("out of range"));
        assert!(FlashError::PbnOutOfRange(Pbn(9))
            .to_string()
            .contains("out of range"));
        assert!(FlashError::ProgramNotFree(Ppn(0))
            .to_string()
            .contains("erase-before-write"));
    }
}
