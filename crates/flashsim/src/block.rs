//! Per-erase-block simulator state.

use crate::oob::OobData;
use crate::page::{Page, PageState};

/// Aggregate state of an erase block, as visible to FTL/SSC policy code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockState {
    /// Pages currently `Valid`.
    pub valid_pages: u32,
    /// Pages currently `Invalid`.
    pub invalid_pages: u32,
    /// Index of the next programmable page; equals `pages_per_block` when
    /// the block is fully written.
    pub write_ptr: u32,
    /// Number of times the block has been erased.
    pub erase_count: u64,
}

impl BlockState {
    /// Pages still programmable in this block.
    pub fn free_pages(&self, pages_per_block: u32) -> u32 {
        pages_per_block - self.write_ptr
    }

    /// Returns `true` if no page has been programmed since the last erase.
    pub fn is_empty(&self) -> bool {
        self.write_ptr == 0
    }

    /// Returns `true` if every page has been programmed.
    pub fn is_full(&self, pages_per_block: u32) -> bool {
        self.write_ptr == pages_per_block
    }
}

/// A simulated erase block: a vector of pages plus write-pointer and wear
/// accounting.
#[derive(Debug, Clone)]
pub struct Block {
    pub(crate) pages: Vec<Page>,
    pub(crate) write_ptr: u32,
    pub(crate) valid_pages: u32,
    pub(crate) invalid_pages: u32,
    pub(crate) erase_count: u64,
}

impl Block {
    pub(crate) fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![Page::default(); pages_per_block as usize],
            write_ptr: 0,
            valid_pages: 0,
            invalid_pages: 0,
            erase_count: 0,
        }
    }

    /// Snapshot of the aggregate state.
    pub fn state(&self) -> BlockState {
        BlockState {
            valid_pages: self.valid_pages,
            invalid_pages: self.invalid_pages,
            write_ptr: self.write_ptr,
            erase_count: self.erase_count,
        }
    }

    pub(crate) fn erase(&mut self) {
        for p in &mut self.pages {
            p.erase();
        }
        self.write_ptr = 0;
        self.valid_pages = 0;
        self.invalid_pages = 0;
        self.erase_count += 1;
    }

    pub(crate) fn program(&mut self, page: u32, data: Option<Box<[u8]>>, oob: OobData) {
        let slot = &mut self.pages[page as usize];
        debug_assert_eq!(slot.state, PageState::Free);
        slot.state = PageState::Valid;
        slot.oob = oob;
        slot.data = data;
        self.write_ptr = page + 1;
        self.valid_pages += 1;
    }

    pub(crate) fn revalidate(&mut self, page: u32) -> bool {
        let slot = &mut self.pages[page as usize];
        if slot.state == PageState::Invalid {
            slot.state = PageState::Valid;
            self.valid_pages += 1;
            self.invalid_pages -= 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn invalidate(&mut self, page: u32) -> bool {
        let slot = &mut self.pages[page as usize];
        if slot.state == PageState::Valid {
            slot.state = PageState::Invalid;
            // The cells keep their content until the block is erased; a
            // crash-recovered mapping may legitimately read a superseded
            // (but never torn) version.
            self.valid_pages -= 1;
            self.invalid_pages += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_empty() {
        let b = Block::new(8);
        let s = b.state();
        assert!(s.is_empty());
        assert!(!s.is_full(8));
        assert_eq!(s.free_pages(8), 8);
        assert_eq!(s.erase_count, 0);
    }

    #[test]
    fn program_and_invalidate_track_counts() {
        let mut b = Block::new(4);
        b.program(0, None, OobData::for_lba(1, false, 1));
        b.program(1, None, OobData::for_lba(2, false, 2));
        assert_eq!(b.state().valid_pages, 2);
        assert_eq!(b.state().write_ptr, 2);
        assert!(b.invalidate(0));
        assert_eq!(b.state().valid_pages, 1);
        assert_eq!(b.state().invalid_pages, 1);
        // Double-invalidate is a no-op.
        assert!(!b.invalidate(0));
        assert_eq!(b.state().invalid_pages, 1);
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut b = Block::new(4);
        for i in 0..4 {
            b.program(i, None, OobData::for_lba(i as u64, false, i as u64));
        }
        assert!(b.state().is_full(4));
        b.erase();
        let s = b.state();
        assert!(s.is_empty());
        assert_eq!(s.valid_pages, 0);
        assert_eq!(s.invalid_pages, 0);
        assert_eq!(s.erase_count, 1);
        b.erase();
        assert_eq!(b.state().erase_count, 2);
    }
}
