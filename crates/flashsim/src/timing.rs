//! Operation timing model.
//!
//! Costs follow the paper's Table 2 (Intel 300-series SSD latencies):
//!
//! | Parameter         | Value   |
//! |-------------------|---------|
//! | Page read         | 65 µs   |
//! | Page write        | 85 µs   |
//! | Block erase       | 1000 µs |
//! | Bus control delay | 2 µs    |
//! | Control delay     | 10 µs   |
//!
//! A page read or program pays the control delay (command decode, map
//! lookup), the bus control delay (transfer setup) and the raw cell
//! operation. An erase pays the control delay plus the erase time; no data
//! crosses the bus. OOB reads/writes piggyback on their page operation: the
//! paper assumes "writing to the OOB is free, as it can be overlapped with
//! regular writes", and an isolated OOB read costs a page read (the cell read
//! dominates).

use simkit::Duration;

/// Timing parameters for a simulated flash device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Raw cell read time per page.
    pub page_read: Duration,
    /// Raw cell program time per page.
    pub page_write: Duration,
    /// Block erase time.
    pub block_erase: Duration,
    /// Bus transfer setup per data-carrying operation.
    pub bus_control: Duration,
    /// Controller command-processing delay per operation.
    pub control: Duration,
}

impl FlashTiming {
    /// Table 2 parameters.
    pub const fn paper_default() -> Self {
        FlashTiming {
            page_read: Duration::from_micros(65),
            page_write: Duration::from_micros(85),
            block_erase: Duration::from_micros(1000),
            bus_control: Duration::from_micros(2),
            control: Duration::from_micros(10),
        }
    }

    /// Total cost of one page read.
    pub fn read_cost(&self) -> Duration {
        self.control + self.bus_control + self.page_read
    }

    /// Total cost of one page program.
    pub fn write_cost(&self) -> Duration {
        self.control + self.bus_control + self.page_write
    }

    /// Total cost of one block erase.
    pub fn erase_cost(&self) -> Duration {
        self.control + self.block_erase
    }

    /// Cost of reading only the OOB area of a page (used by recovery scans).
    pub fn oob_read_cost(&self) -> Duration {
        // The cell array must still be sensed; only the bus transfer shrinks
        // to a negligible size.
        self.control + self.page_read
    }

    /// Cost of a pure in-memory metadata operation on the device controller.
    pub fn metadata_cost(&self) -> Duration {
        self.control
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs() {
        let t = FlashTiming::paper_default();
        assert_eq!(t.read_cost().as_micros(), 77);
        assert_eq!(t.write_cost().as_micros(), 97);
        assert_eq!(t.erase_cost().as_micros(), 1010);
        assert_eq!(t.oob_read_cost().as_micros(), 75);
        assert_eq!(t.metadata_cost().as_micros(), 10);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(FlashTiming::default(), FlashTiming::paper_default());
    }

    #[test]
    fn write_slower_than_read_slower_than_erase() {
        let t = FlashTiming::paper_default();
        assert!(t.read_cost() < t.write_cost());
        assert!(t.write_cost() < t.erase_cost());
    }
}
