//! Concurrency and shutdown guarantees of the cache server.
//!
//! * **Per-LBA read-your-writes** — pipelined `PUT`/`GET` pairs on the
//!   same LBA from many concurrent clients always observe the immediately
//!   preceding write, across every shard.
//! * **Acked-write visibility** — once a `PUT` is acknowledged, every
//!   later `GET` of that LBA from *any* connection sees it.
//! * **Shutdown drain** — a graceful stop leaves zero buffered log
//!   records (the `barrier_flush` drain ran) and no acknowledged write is
//!   lost across a subsequent crash + recovery.
//! * **Resilience** — a malformed frame closes one connection without
//!   affecting others; the connection semaphore really bounds service.

use std::io::Read;
use std::net::TcpStream;
use std::time::Duration as StdDuration;

use cachemgr::{FlashTierWb, FlashTierWt, ShardSet};
use disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier_core::{shard_config, ShardRouter, Ssc, SscConfig};
use flashtier_server::{BlockClient, Server, ServerConfig};

const BLOCK: usize = 512;

/// A roomier geometry than `small_test` so a 4-way split leaves usable
/// shards (mirrors the core shard tests).
fn wide_config() -> SscConfig {
    let mut cfg = SscConfig::small_test();
    let g = cfg.flash.geometry;
    cfg.flash.geometry = flashsim::Geometry::new(
        g.planes(),
        32,
        g.pages_per_block(),
        g.page_size(),
        g.oob_size(),
    );
    cfg
}

fn disk() -> Disk {
    Disk::new(DiskConfig::small_test(), DiskDataMode::Store)
}

fn wt_set(shards: usize) -> ShardSet<FlashTierWt> {
    let config = wide_config();
    let per_shard = shard_config(&config, shards);
    let ppb = config.flash.geometry.pages_per_block();
    ShardSet::from_parts(
        (0..shards)
            .map(|_| FlashTierWt::new(Ssc::new(per_shard), disk()))
            .collect(),
        ShardRouter::new(shards, ppb),
    )
}

fn wb_set(shards: usize) -> ShardSet<FlashTierWb> {
    let config = wide_config();
    let per_shard = shard_config(&config, shards);
    let ppb = config.flash.geometry.pages_per_block();
    ShardSet::from_parts(
        (0..shards)
            .map(|_| FlashTierWb::new(Ssc::new(per_shard), disk()))
            .collect(),
        ShardRouter::new(shards, ppb),
    )
}

/// Distinct, verifiable block content per (client, lba, round).
fn payload(client: u64, lba: u64, round: u64) -> Vec<u8> {
    let tag = (client
        .wrapping_mul(31)
        .wrapping_add(lba)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(round)) as u8;
    let mut data = vec![tag; BLOCK];
    data[..8].copy_from_slice(&lba.to_le_bytes());
    data[8..16].copy_from_slice(&round.to_le_bytes());
    data
}

#[test]
fn pipelined_per_lba_read_your_writes_across_clients() {
    const CLIENTS: u64 = 8;
    const LBAS_PER_CLIENT: u64 = 8;
    const ROUNDS: u64 = 25;
    let server = Server::start(wt_set(4), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let client = BlockClient::connect(addr).unwrap();
                assert_eq!(client.block_size(), BLOCK);
                let (mut tx, mut rx) = client.into_split();
                // Pipelined PUT/GET pairs: within a round, the GET is
                // sent before any response is read, so correctness rests
                // on the server's per-LBA FIFO, not on client pacing.
                // Responses are drained between rounds — a client that
                // does not retry must window its pipelining below the
                // shard queue depth, or overload shedding answers `BUSY`.
                // expectations[i] = Some((lba, round)) for GET req ids.
                let mut expectations: Vec<Option<(u64, u64)>> = Vec::new();
                for round in 0..ROUNDS {
                    let drained = expectations.len();
                    for k in 0..LBAS_PER_CLIENT {
                        // Disjoint per-client LBAs, interleaved so
                        // neighbouring clients share shards.
                        let lba = c + CLIENTS * k;
                        let put_id = tx.send_put(lba, &payload(c, lba, round)).unwrap();
                        assert_eq!(put_id as usize, expectations.len());
                        expectations.push(None);
                        let get_id = tx.send_get(lba).unwrap();
                        assert_eq!(get_id as usize, expectations.len());
                        expectations.push(Some((lba, round)));
                    }
                    tx.flush_io().unwrap();
                    for _ in drained..expectations.len() {
                        let resp = rx.recv().unwrap();
                        assert!(resp.ok(), "op {} failed", resp.req_id);
                        if let Some((lba, round)) = expectations[resp.req_id as usize] {
                            assert_eq!(
                                resp.payload,
                                payload(c, lba, round),
                                "client {c}: GET of lba {lba} after round-{round} PUT \
                                 returned wrong data"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let report = server.shutdown();
    assert_eq!(report.stats.protocol_errors, 0);
    assert_eq!(report.stats.op_errors, 0);
    assert_eq!(
        report.stats.requests,
        CLIENTS * LBAS_PER_CLIENT * ROUNDS * 2
    );
}

#[test]
fn acked_write_is_visible_to_other_connections() {
    let server = Server::start(wt_set(2), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut writer = BlockClient::connect(server.addr()).unwrap();
    let mut reader = BlockClient::connect(server.addr()).unwrap();
    for lba in 0..24u64 {
        let data = payload(0xA, lba, 7);
        assert!(writer.put(lba, &data).unwrap().ok());
        // The ack means the owning shard worker applied the write; a GET
        // from a different connection must now observe it.
        let resp = reader.get(lba).unwrap();
        assert!(resp.ok());
        assert_eq!(resp.payload, data, "lba {lba} stale after acked write");
    }
    drop(writer);
    drop(reader);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_and_no_acked_write_is_lost() {
    const PUTS: u64 = 40;
    const FILL_GETS: u64 = 32;
    let server = Server::start(wb_set(4), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = BlockClient::connect(server.addr()).unwrap();
    // Acked dirty writes (write-back: the cache holds the only copy)...
    for lba in 0..PUTS {
        assert!(client.put(lba, &payload(1, lba, 0)).unwrap().ok());
    }
    // ...plus reads of never-written blocks, which fill clean and sit in
    // the group-commit buffer until a barrier — exactly what the shutdown
    // drain must harden.
    for lba in 1000..1000 + FILL_GETS {
        assert!(client.get(lba).unwrap().ok());
    }
    drop(client);

    let report = server.shutdown();
    assert_eq!(report.stats.puts, PUTS);
    assert_eq!(report.stats.op_errors, 0);
    assert!(report.panics.is_empty(), "clean run: {:?}", report.panics);
    assert!(report.shard_health.iter().all(|h| h.is_healthy()));
    let (mut stacks, router) = report.stacks.expect("no worker lost").into_shards();

    // The drain ran barrier_flush on every shard: a crash immediately
    // after the graceful stop finds nothing buffered...
    for (i, stack) in stacks.iter_mut().enumerate() {
        let lost = stack.ssc_mut().crash();
        assert_eq!(lost, 0, "shard {i}: graceful stop left buffered records");
        stack.crash_and_recover().unwrap();
        // Recovery sanity: only acked PUT LBAs are dirty.
        let (dirty, _) = stack.ssc_mut().exists(0, u64::MAX);
        for lba in dirty {
            assert!(lba < PUTS, "unexpected dirty lba {lba}");
        }
    }
    // ...and every acknowledged write survives into the recovered stacks.
    for lba in 0..PUTS {
        let stack = &mut stacks[router.shard_of(lba)];
        let (data, _) = cachemgr::CacheSystem::read(stack, lba).unwrap();
        assert_eq!(data, payload(1, lba, 0), "acked write to lba {lba} lost");
    }
}

#[test]
fn flush_barrier_spans_all_shards() {
    let server = Server::start(wb_set(4), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = BlockClient::connect(server.addr()).unwrap();
    for lba in 0..16u64 {
        assert!(client.put(lba, &payload(2, lba, 0)).unwrap().ok());
    }
    // Clean fills across shards put records in several group-commit
    // buffers; one FLUSH must drain them all.
    for lba in 500..540u64 {
        assert!(client.get(lba).unwrap().ok());
    }
    assert!(client.flush().unwrap().ok());
    drop(client);
    let report = server.shutdown();
    assert_eq!(report.stats.flushes, 1, "barrier acked exactly once");
    let (mut stacks, _) = report.stacks.expect("no worker lost").into_shards();
    for (i, stack) in stacks.iter_mut().enumerate() {
        assert_eq!(
            stack.ssc_mut().crash(),
            0,
            "shard {i} still buffered after FLUSH + drain"
        );
    }
}

#[test]
fn malformed_frame_closes_one_connection_only() {
    let server = Server::start(wt_set(2), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut healthy = BlockClient::connect(server.addr()).unwrap();
    assert!(healthy.put(3, &payload(3, 3, 0)).unwrap().ok());

    // A raw connection that speaks garbage after the hello.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let mut hello = [0u8; 12];
    raw.read_exact(&mut hello).unwrap();
    std::io::Write::write_all(&mut raw, &[0xFF; 21]).unwrap();
    raw.set_read_timeout(Some(StdDuration::from_secs(10)))
        .unwrap();
    let mut probe = [0u8; 1];
    // The server closes the poisoned connection (clean EOF).
    assert_eq!(raw.read(&mut probe).unwrap(), 0);

    // The healthy connection is unaffected, and new connections work.
    let resp = healthy.get(3).unwrap();
    assert!(resp.ok());
    assert_eq!(resp.payload, payload(3, 3, 0));
    let mut fresh = BlockClient::connect(server.addr()).unwrap();
    assert!(fresh.get(3).unwrap().ok());
    drop(healthy);
    drop(fresh);
    let report = server.shutdown();
    assert_eq!(report.stats.protocol_errors, 1);
}

#[test]
fn semaphore_bounds_serviced_connections() {
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(wt_set(1), "127.0.0.1:0", config).unwrap();
    // The hello is written only after the connection holds a permit, so
    // hello receipt == admission.
    let c1 = BlockClient::connect(server.addr()).unwrap();
    let c2 = BlockClient::connect(server.addr()).unwrap();
    let mut third = TcpStream::connect(server.addr()).unwrap();
    third
        .set_read_timeout(Some(StdDuration::from_millis(300)))
        .unwrap();
    let mut hello = [0u8; 12];
    let err = third.read_exact(&mut hello).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "third connection must wait for a permit, got {err:?}"
    );
    // Releasing a permit admits the waiter.
    drop(c1);
    third
        .set_read_timeout(Some(StdDuration::from_secs(30)))
        .unwrap();
    third.read_exact(&mut hello).unwrap();
    assert_eq!(&hello[..2], b"FT");
    drop(c2);
    drop(third);
    server.shutdown();
}
