//! Serve-path fault-tolerance torture tests (DESIGN.md §12).
//!
//! * **No acked write is lost under network faults** — retrying clients
//!   drive the server while deterministic resets, partial writes, stalls
//!   and delays are injected on both sides of the wire; a shadow model of
//!   each client's last acknowledged PUT per LBA is verified live (GETs)
//!   and again after graceful shutdown + crash + recovery.
//! * **Every call is deadline-bounded** — a `RetryingClient` call either
//!   returns a response or errors within its op deadline, injected faults
//!   or not.
//! * **Quarantine isolates exactly one shard** — an armed unrecoverable
//!   device fault (`PowerLoss` inside group commit) quarantines the
//!   owning shard: its requests answer `SHARD_FAILED`, every other shard
//!   keeps serving, and shutdown still drains the healthy shards.
//!
//! Scaled by `FLASHTIER_FUZZ_SCALE` (nightly deep CI sets 3) like the
//! crash-point fuzzer.

use std::collections::HashMap;
use std::time::{Duration as StdDuration, Instant};

use cachemgr::{CacheSystem, FlashTierWb, FlashTierWt, ShardSet};
use disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier_core::{shard_config, CrashSite, ShardRouter, Ssc, SscConfig};
use flashtier_server::{
    BlockClient, NetFaultPlan, RetryConfig, RetryingClient, ServeSystem, Server, ServerConfig,
};

const BLOCK: usize = 512;
const CLIENTS: usize = 4;
/// Transport-fault rate for the torture runs: ~2.5% of transport
/// operations are interfered with, orders of magnitude beyond any real
/// network, so every retry path fires within a few hundred requests.
const TORTURE_PPM: u32 = 25_000;

/// Campaign multiplier from `FLASHTIER_FUZZ_SCALE` (default 1; deep CI
/// sets 3).
fn fuzz_scale() -> u64 {
    std::env::var("FLASHTIER_FUZZ_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// A roomier geometry than `small_test` so a 4-way split leaves usable
/// shards (mirrors the server concurrency tests).
fn wide_config() -> SscConfig {
    let mut cfg = SscConfig::small_test();
    let g = cfg.flash.geometry;
    cfg.flash.geometry = flashsim::Geometry::new(
        g.planes(),
        32,
        g.pages_per_block(),
        g.page_size(),
        g.oob_size(),
    );
    cfg
}

fn disk() -> Disk {
    Disk::new(DiskConfig::small_test(), DiskDataMode::Store)
}

fn wt_set(shards: usize) -> ShardSet<FlashTierWt> {
    let config = wide_config();
    let per_shard = shard_config(&config, shards);
    let ppb = config.flash.geometry.pages_per_block();
    ShardSet::from_parts(
        (0..shards)
            .map(|_| FlashTierWt::new(Ssc::new(per_shard), disk()))
            .collect(),
        ShardRouter::new(shards, ppb),
    )
}

fn wb_set(shards: usize) -> ShardSet<FlashTierWb> {
    let config = wide_config();
    let per_shard = shard_config(&config, shards);
    let ppb = config.flash.geometry.pages_per_block();
    ShardSet::from_parts(
        (0..shards)
            .map(|_| FlashTierWb::new(Ssc::new(per_shard), disk()))
            .collect(),
        ShardRouter::new(shards, ppb),
    )
}

/// Self-identifying block content for (lba, version k).
fn payload(lba: u64, k: u64) -> Vec<u8> {
    let tag = (lba.wrapping_mul(0x9E37_79B9).wrapping_add(k)) as u8;
    let mut data = vec![tag; BLOCK];
    data[..8].copy_from_slice(&lba.to_le_bytes());
    data[8..16].copy_from_slice(&k.to_le_bytes());
    data
}

/// The torture body, generic over the manager: faulted server, faulted
/// retrying clients on disjoint LBA classes, live read-your-writes
/// checks, then crash + recovery and a full shadow-model read-back.
fn run_torture<S>(set: ShardSet<S>, seed: u64, recover: impl Fn(&mut S))
where
    S: ServeSystem + 'static,
{
    let ops_per_client = 300 * fuzz_scale();
    let config = ServerConfig {
        net_faults: Some(NetFaultPlan::uniform(seed, TORTURE_PPM)),
        ..ServerConfig::default()
    };
    let server = Server::start(set, "127.0.0.1:0", config).expect("bind server");
    let addr = server.addr();
    let op_deadline = RetryConfig::default_for(0).op_deadline;
    // Generous slack over the op deadline: the bound being checked is
    // "bounded", not "fast" — CI machines stall.
    let call_bound = op_deadline + StdDuration::from_secs(5);

    let shadows: Vec<HashMap<u64, u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut cfg = RetryConfig::default_for(seed ^ (c as u64 + 1));
                    cfg.net_faults = Some(
                        NetFaultPlan::uniform(seed ^ 0xC11E_4715, TORTURE_PPM)
                            .decorrelated(c as u64),
                    );
                    let mut client =
                        RetryingClient::connect(addr, c as u64 + 1, cfg).expect("connect client");
                    assert_eq!(client.block_size(), BLOCK);
                    // lba -> version of the last acked PUT whose durability
                    // is certain.
                    let mut shadow: HashMap<u64, u64> = HashMap::new();
                    let mut state = seed ^ (0x51AB_51AB * (c as u64 + 1));
                    for i in 0..ops_per_client {
                        let r = lcg(&mut state);
                        // Disjoint per-client LBA classes (mod CLIENTS) so
                        // "last acked PUT" needs no cross-client ordering.
                        let lba = (r % 64) * CLIENTS as u64 + c as u64;
                        let started = Instant::now();
                        match r % 10 {
                            0 => {
                                // Durability barriers are idempotent and
                                // freely retried; transient failure is
                                // acceptable, a wrong status is not.
                                if let Ok(resp) = client.flush() {
                                    assert!(resp.ok(), "client {c}: FLUSH status {}", resp.status);
                                }
                            }
                            1..=4 => {
                                if let Ok(resp) = client.get(lba) {
                                    assert!(
                                        resp.ok(),
                                        "client {c}: GET of lba {lba} status {}",
                                        resp.status
                                    );
                                    if let Some(&k) = shadow.get(&lba) {
                                        assert_eq!(
                                            resp.payload,
                                            payload(lba, k),
                                            "client {c}: acked write to lba {lba} not visible"
                                        );
                                    }
                                }
                            }
                            _ => match client.put(lba, &payload(lba, i)) {
                                Ok(resp) if resp.ok() => {
                                    shadow.insert(lba, i);
                                }
                                Ok(_) | Err(_) => {
                                    // Not acked: the LBA is old-or-new
                                    // from here on; drop it from the
                                    // certain set.
                                    shadow.remove(&lba);
                                }
                            },
                        }
                        let took = started.elapsed();
                        assert!(
                            took <= call_bound,
                            "client {c}: call {i} took {took:?}, deadline {op_deadline:?}"
                        );
                    }
                    // The injected faults must actually have exercised the
                    // retry machinery somewhere in the fleet; checked
                    // per-fleet below via merged stats.
                    (shadow, client.stats())
                })
            })
            .collect();
        let mut shadows = Vec::new();
        let mut retries = 0u64;
        let mut client_injected = 0u64;
        for h in handles {
            let (shadow, stats) = h.join().expect("torture client thread");
            retries += stats.retries + stats.busy_retries;
            client_injected += stats.net_faults.total();
            assert_eq!(
                stats.deadline_failures, 0,
                "a local server must be survivable within the deadline"
            );
            shadows.push(shadow);
        }
        assert!(client_injected > 0, "client-side fault plan never fired");
        assert!(retries > 0, "faults fired but nothing was ever retried");
        shadows
    });

    let report = server.shutdown();
    assert!(
        report.panics.is_empty(),
        "worker panics: {:?}",
        report.panics
    );
    assert!(
        report.shard_health.iter().all(|h| h.is_healthy()),
        "network faults must never quarantine a shard: {:?}",
        report.shard_health
    );
    assert!(
        report.stats.net_faults_injected > 0,
        "server-side fault plan never fired"
    );
    let (mut stacks, router) = report.stacks.expect("no worker lost").into_shards();
    for stack in &mut stacks {
        recover(stack);
    }
    let mut checked = 0u64;
    for (c, shadow) in shadows.iter().enumerate() {
        for (&lba, &k) in shadow {
            let (data, _) = CacheSystem::read(&mut stacks[router.shard_of(lba)], lba)
                .expect("read back acked write");
            assert_eq!(
                data,
                payload(lba, k),
                "client {c}: acked write to lba {lba} lost across crash+recovery"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "torture run acked no writes");
}

#[test]
fn torture_loses_no_acked_writes_wt() {
    run_torture(wt_set(4), 0xF417_0001, |s| {
        s.crash_and_recover().expect("recover wt shard");
    });
}

#[test]
fn torture_loses_no_acked_writes_wb() {
    run_torture(wb_set(4), 0xF417_0002, |s| {
        s.crash_and_recover().expect("recover wb shard");
    });
}

#[test]
fn unrecoverable_shard_fault_quarantines_only_that_shard() {
    let shards = 4;
    let mut set = wb_set(shards);
    let router = set.router();
    let victim = router.shard_of(0);
    // Arm a PowerLoss inside the victim's next group commit: the worker's
    // apply path hits an unrecoverable device error mid-load.
    set.shard_mut(victim)
        .ssc_mut()
        .arm_crash(CrashSite::GroupCommit, 0);
    let server = Server::start(set, "127.0.0.1:0", ServerConfig::default()).expect("bind server");
    let mut client = BlockClient::connect(server.addr()).expect("connect");

    // Hammer the victim shard until the armed fault fires and the shard
    // answers SHARD_FAILED (group commit fires within a few dozen
    // buffered records).
    let victim_lbas: Vec<u64> = (0..100_000u64)
        .filter(|&l| router.shard_of(l) == victim)
        .take(600)
        .collect();
    let mut quarantined_at = None;
    for (n, &l) in victim_lbas.iter().enumerate() {
        let resp = client.put(l, &payload(l, 1)).expect("victim put");
        if resp.shard_failed() {
            quarantined_at = Some(n);
            break;
        }
        assert!(resp.ok(), "pre-quarantine PUT status {}", resp.status);
    }
    let quarantined_at = quarantined_at.expect("armed GroupCommit crash never fired");

    // Every further request owned by the victim is refused...
    let resp = client.get(victim_lbas[0]).expect("victim get");
    assert!(resp.shard_failed(), "quarantined shard must refuse GETs");
    let resp = client
        .put(victim_lbas[1], &payload(victim_lbas[1], 2))
        .expect("victim put");
    assert!(resp.shard_failed(), "quarantined shard must refuse PUTs");

    // ...while every other shard keeps serving reads and writes.
    for l in (0..1000u64)
        .filter(|&l| router.shard_of(l) != victim)
        .take(24)
    {
        let data = payload(l, 3);
        assert!(client.put(l, &data).expect("healthy put").ok());
        let resp = client.get(l).expect("healthy get");
        assert!(resp.ok());
        assert_eq!(resp.payload, data, "healthy shard served wrong data");
    }

    // A whole-device FLUSH cannot cover the quarantined shard: the
    // barrier completes but reports the degradation.
    let resp = client.flush().expect("flush");
    assert!(
        resp.shard_failed(),
        "FLUSH over a quarantined shard must answer SHARD_FAILED, got {}",
        resp.status
    );

    drop(client);
    let report = server.shutdown();
    assert!(report.panics.is_empty(), "{:?}", report.panics);
    assert_eq!(report.stats.shards_quarantined, 1);
    let unhealthy: Vec<usize> = report
        .shard_health
        .iter()
        .enumerate()
        .filter(|(_, h)| !h.is_healthy())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(unhealthy, vec![victim], "exactly the victim is quarantined");
    // The healthy shards were still drained and every stack comes back.
    let (stacks, _) = report.stacks.expect("no worker thread lost").into_shards();
    assert_eq!(stacks.len(), shards);
    // Sanity on the trigger: quarantine happened mid-load, not at
    // shutdown.
    assert!(quarantined_at < victim_lbas.len());
}
