//! The concurrent cache server.
//!
//! # Architecture
//!
//! ```text
//!  accept loop ──(semaphore permit)──► per-connection reader ─┐
//!                                      per-connection writer ◄┼── responses
//!                                                             │
//!                 shard 0 FIFO queue ◄────────────────────────┤ routed by
//!                 shard 1 FIFO queue ◄────────────────────────┤ ShardRouter(lba)
//!                 shard N FIFO queue ◄────────────────────────┘
//!                        │
//!                 worker thread i — owns manager stack i exclusively
//! ```
//!
//! * **Connection bounding.** The accept loop takes a semaphore permit
//!   before servicing a connection; at the cap it blocks, so load beyond
//!   the bound shows up as connection-queueing delay instead of unbounded
//!   thread growth.
//! * **Per-shard routing, per-LBA ordering.** Each request is routed by a
//!   pure hash of its LBA to exactly one shard queue, and each queue is
//!   drained by exactly one worker that owns its manager stack. Two
//!   invariants follow with no data-path locks: operations on the same LBA
//!   from one connection execute in submission order (mpsc channels are
//!   FIFO per sender), and an *acknowledged* write is visible to every
//!   later request on that LBA from any connection (the ack means the
//!   owning worker already applied it, and that worker serializes the
//!   LBA's subsequent operations).
//! * **Batched submission.** A worker drains up to `batch_max` queued
//!   requests per wakeup and applies them back-to-back against its stack,
//!   amortizing wakeups under load while adding no latency when idle (the
//!   first request is taken with a blocking `recv`).
//! * **Graceful shutdown.** [`Server::shutdown`] stops the accept loop,
//!   unblocks connection readers, lets every already-enqueued request
//!   drain through the workers, then runs each healthy stack through
//!   `barrier_flush` — the durability barrier — before handing the stacks
//!   back to the caller. No acknowledged operation is lost across a
//!   graceful stop followed by crash recovery.
//!
//! # Failure model (DESIGN.md §12)
//!
//! * **No path blocks forever.** Accepted sockets carry read/write
//!   timeouts; a connection whose peer stalls mid-frame (or goes idle past
//!   the read timeout) is evicted, releasing its semaphore permit. The
//!   byte stream cannot be resumed after a timeout fires mid-frame, so
//!   eviction — not retry — is the only sound response.
//! * **Overload sheds, it does not queue unboundedly.** A full shard
//!   queue answers `BUSY` immediately instead of blocking the reader; a
//!   request that waited longer than `shed_timeout` in its queue is
//!   answered `BUSY` without being applied. `BUSY` is a promise the
//!   operation did **not** execute, so clients retry it freely.
//! * **Retried PUTs are applied at most once.** A client that declared a
//!   session token gets server-side dedup keyed by `(token, req_id)`:
//!   a PUT whose ack was lost in transit is acknowledged — not re-applied
//!   — when resent on a fresh connection.
//! * **A failing shard is quarantined, not fatal.** A worker that panics
//!   while applying a request, or whose stack reports an unrecoverable
//!   fault (`CmError::is_unrecoverable`, i.e. the device needs crash
//!   recovery), stops touching its stack and drains its queue with
//!   `SHARD_FAILED` responses. Other shards keep serving; shutdown skips
//!   the quarantined shard's durability barrier and reports per-shard
//!   health.

use std::any::Any;
use std::collections::{BTreeSet, HashMap};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use cachemgr::{CacheSystem, FlashTierWb, FlashTierWt, PageBuf, ShardSet};
use flashtier_core::{ShardRouter, SscDevice};
use simkit::Duration;

use crate::netfault::{FaultyTransport, NetFaultPlan};
use crate::protocol::{
    Hello, ReadOutcome, Request, Response, STATUS_BUSY, STATUS_ERR, STATUS_OK, STATUS_SHARD_FAILED,
};
use crate::semaphore::Semaphore;

/// Applied-PUT ids remembered per session for retry dedup. Old ids are
/// pruned in arrival order once the window fills; a client retrying a PUT
/// more than this many acknowledged writes later is outside the window
/// (and outside any sane retry deadline).
const DEDUP_WINDOW: usize = 4096;

/// A cache stack the server can front: any [`CacheSystem`] that can also
/// run a durability barrier (the shutdown drain) and move across threads.
pub trait ServeSystem: CacheSystem + Send {
    /// Synchronously commits all buffered log records (see
    /// `SscDevice::barrier_flush`).
    ///
    /// # Errors
    ///
    /// Device faults during the commit.
    fn barrier_flush(&mut self) -> cachemgr::Result<Duration>;
}

impl<D: SscDevice + Send> ServeSystem for FlashTierWt<D> {
    fn barrier_flush(&mut self) -> cachemgr::Result<Duration> {
        FlashTierWt::barrier_flush(self)
    }
}

impl<D: SscDevice + Send> ServeSystem for FlashTierWb<D> {
    fn barrier_flush(&mut self) -> cachemgr::Result<Duration> {
        FlashTierWb::barrier_flush(self)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum connections serviced concurrently; further accepts wait.
    pub max_connections: usize,
    /// Bounded depth of each shard's request queue; a full queue answers
    /// `BUSY` instead of blocking the connection reader.
    pub queue_depth: usize,
    /// Maximum requests a worker applies per wakeup.
    pub batch_max: usize,
    /// Socket read timeout on accepted connections; doubles as the idle
    /// limit — a peer that sends nothing for this long is evicted. `None`
    /// restores block-forever reads.
    pub read_timeout: Option<StdDuration>,
    /// Socket write timeout on accepted connections, so a peer that stops
    /// draining responses cannot park the writer thread forever.
    pub write_timeout: Option<StdDuration>,
    /// Queueing deadline: a request that sat longer than this on its shard
    /// queue is shed with `BUSY` instead of being applied late. `None`
    /// disables deadline shedding.
    pub shed_timeout: Option<StdDuration>,
    /// Seeded network fault injection on accepted connections (testing);
    /// `None` — the default — is the zero-cost clean path.
    pub net_faults: Option<NetFaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            queue_depth: 1024,
            batch_max: 64,
            read_timeout: Some(StdDuration::from_secs(30)),
            write_timeout: Some(StdDuration::from_secs(30)),
            shed_timeout: Some(StdDuration::from_secs(5)),
            net_faults: None,
        }
    }
}

/// Shared atomic counters, snapshotted into [`ServerStats`].
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    gets: AtomicU64,
    puts: AtomicU64,
    flushes: AtomicU64,
    op_errors: AtomicU64,
    protocol_errors: AtomicU64,
    batches: AtomicU64,
    batched_ops: AtomicU64,
    sim_time_us: AtomicU64,
    busy_rejects: AtomicU64,
    shed_expired: AtomicU64,
    deduped_puts: AtomicU64,
    idle_evictions: AtomicU64,
    shards_quarantined: AtomicU64,
    net_faults_injected: AtomicU64,
}

/// A point-in-time snapshot of server activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and serviced.
    pub connections: u64,
    /// Requests decoded off the wire.
    pub requests: u64,
    /// `GET` operations completed.
    pub gets: u64,
    /// `PUT` operations completed.
    pub puts: u64,
    /// `FLUSH` barriers completed (counted once per barrier).
    pub flushes: u64,
    /// Operations that failed server-side (status `ERR` responses).
    pub op_errors: u64,
    /// Connections dropped for malformed frames.
    pub protocol_errors: u64,
    /// Worker wakeups (each applied one batch).
    pub batches: u64,
    /// Requests applied through batches (mean batch = `batched_ops /
    /// batches`).
    pub batched_ops: u64,
    /// Total simulated device time accumulated across all shards, µs.
    pub sim_time_us: u64,
    /// Requests answered `BUSY` because their shard queue was full.
    pub busy_rejects: u64,
    /// Requests answered `BUSY` because their queueing deadline expired.
    pub shed_expired: u64,
    /// Retried `PUT`s absorbed by session dedup (acked without re-apply).
    pub deduped_puts: u64,
    /// Connections evicted by the socket read timeout (stalled or idle
    /// peers).
    pub idle_evictions: u64,
    /// Shards currently quarantined (worker panic or unrecoverable stack
    /// fault).
    pub shards_quarantined: u64,
    /// Network faults injected on accepted connections (testing only).
    pub net_faults_injected: u64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            op_errors: self.op_errors.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            sim_time_us: self.sim_time_us.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            deduped_puts: self.deduped_puts.load(Ordering::Relaxed),
            idle_evictions: self.idle_evictions.load(Ordering::Relaxed),
            shards_quarantined: self.shards_quarantined.load(Ordering::Relaxed),
            net_faults_injected: self.net_faults_injected.load(Ordering::Relaxed),
        }
    }
}

/// One routed unit of work on a shard queue.
enum ShardReq {
    Get {
        req_id: u64,
        lba: u64,
        enqueued: Instant,
        reply: Sender<Response>,
    },
    Put {
        req_id: u64,
        lba: u64,
        data: Vec<u8>,
        /// `(session token, req_id)` when the connection declared a
        /// session — the at-most-once key for retried PUTs.
        dedup: Option<(u64, u64)>,
        enqueued: Instant,
        reply: Sender<Response>,
    },
    /// One leg of a fanned-out durability barrier; the last shard to
    /// finish sends the single response.
    Flush {
        req_id: u64,
        remaining: Arc<AtomicUsize>,
        failed: Arc<AtomicBool>,
        quarantined: Arc<AtomicBool>,
        reply: Sender<Response>,
    },
}

/// Per-shard health shared between its worker and the server handle.
#[derive(Debug, Default)]
struct ShardHealth {
    quarantined: AtomicBool,
    reason: Mutex<Option<String>>,
}

/// Final health of one shard, reported by [`Server::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardHealthStatus {
    /// The shard served to the end and ran its durability barrier.
    Healthy,
    /// The shard was isolated; `reason` records the triggering panic or
    /// unrecoverable fault. Its stack was **not** barrier-flushed.
    Quarantined {
        /// What tripped the quarantine.
        reason: String,
    },
}

impl ShardHealthStatus {
    /// Whether the shard finished healthy.
    pub fn is_healthy(&self) -> bool {
        matches!(self, ShardHealthStatus::Healthy)
    }
}

/// A running cache server. Dropping the handle without calling
/// [`Server::shutdown`] aborts the process threads detached — always shut
/// down explicitly to drain.
#[derive(Debug)]
pub struct Server<S: ServeSystem + 'static> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    senders: Vec<SyncSender<ShardReq>>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<S>>,
    router: ShardRouter,
    counters: Arc<Counters>,
    health: Arc<Vec<ShardHealth>>,
}

/// What a graceful shutdown hands back.
#[derive(Debug)]
pub struct ShutdownReport<S> {
    /// The drained manager stacks, reassembled with their router. `None`
    /// only if a worker *thread* was lost to a panic outside the guarded
    /// apply path, so a complete set cannot be reassembled; per-shard
    /// failures inside the apply path quarantine the shard but still
    /// return its stack.
    pub stacks: Option<ShardSet<S>>,
    /// Final activity counters.
    pub stats: ServerStats,
    /// Final per-shard health, indexed by shard.
    pub shard_health: Vec<ShardHealthStatus>,
    /// Panic messages captured while joining server threads (empty on a
    /// clean shutdown). Shutdown completes regardless.
    pub panics: Vec<String>,
}

/// Renders a captured panic payload (joins and `catch_unwind` both yield
/// `Box<dyn Any>`).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<S: ServeSystem + 'static> Server<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and one worker per shard. Each worker takes exclusive
    /// ownership of its stack.
    ///
    /// # Errors
    ///
    /// Socket bind/listen failures.
    pub fn start<A: ToSocketAddrs>(
        set: ShardSet<S>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Server<S>> {
        assert!(config.max_connections > 0, "need at least one connection");
        assert!(config.queue_depth > 0, "need a non-empty shard queue");
        assert!(config.batch_max > 0, "need a non-empty batch");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (stacks, router) = set.into_shards();
        let block_size = stacks[0].block_size() as u32;
        let shards = stacks.len();
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let health: Arc<Vec<ShardHealth>> =
            Arc::new((0..shards).map(|_| ShardHealth::default()).collect());

        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (index, stack) in stacks.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<ShardReq>(config.queue_depth);
            senders.push(tx);
            let ctx = WorkerCtx {
                counters: Arc::clone(&counters),
                health: Arc::clone(&health),
                index,
                batch_max: config.batch_max,
                shed_timeout: config.shed_timeout,
            };
            workers.push(std::thread::spawn(move || worker_loop(stack, rx, ctx)));
        }

        let accept = {
            let senders = senders.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let sem = Semaphore::new(config.max_connections);
            std::thread::spawn(move || {
                accept_loop(
                    listener, stop, senders, router, block_size, shards, sem, counters, config,
                )
            })
        };

        Ok(Server {
            addr: local,
            stop,
            senders,
            accept,
            workers,
            router,
            counters,
            health,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router placing LBAs onto shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// A live snapshot of the activity counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting, unblock and join every
    /// connection, drain all queued requests through the workers, run the
    /// `barrier_flush` durability barrier on every *healthy* stack, and
    /// hand the stacks back. Thread panics are captured into the report,
    /// never re-thrown — shutdown always completes.
    pub fn shutdown(self) -> ShutdownReport<S> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let mut panics = Vec::new();
        if let Err(p) = self.accept.join() {
            panics.push(format!("accept loop panicked: {}", panic_message(&*p)));
        }
        // All connections are joined; dropping the last senders lets each
        // worker drain its queue, flush, and return its stack.
        drop(self.senders);
        let mut stacks = Vec::new();
        let mut lost = false;
        for (i, w) in self.workers.into_iter().enumerate() {
            match w.join() {
                Ok(stack) => stacks.push(stack),
                Err(p) => {
                    lost = true;
                    panics.push(format!(
                        "shard {i} worker thread lost: {}",
                        panic_message(&*p)
                    ));
                }
            }
        }
        let shard_health = self
            .health
            .iter()
            .map(|h| {
                if h.quarantined.load(Ordering::SeqCst) {
                    ShardHealthStatus::Quarantined {
                        reason: h
                            .reason
                            .lock()
                            .expect("health reason poisoned")
                            .clone()
                            .unwrap_or_else(|| "unknown".to_string()),
                    }
                } else {
                    ShardHealthStatus::Healthy
                }
            })
            .collect();
        ShutdownReport {
            stacks: if lost {
                None
            } else {
                Some(ShardSet::from_parts(stacks, self.router))
            },
            stats: self.counters.snapshot(),
            shard_health,
            panics,
        }
    }
}

/// Everything a shard worker needs besides its stack and queue.
struct WorkerCtx {
    counters: Arc<Counters>,
    health: Arc<Vec<ShardHealth>>,
    index: usize,
    batch_max: usize,
    shed_timeout: Option<StdDuration>,
}

impl WorkerCtx {
    /// Flips this shard into quarantine (idempotent; first caller wins the
    /// recorded reason).
    fn quarantine(&self, reason: String) {
        let h = &self.health[self.index];
        if !h.quarantined.swap(true, Ordering::SeqCst) {
            *h.reason.lock().expect("health reason poisoned") = Some(reason);
            self.counters
                .shards_quarantined
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// How one guarded apply left the shard.
enum ApplyOutcome {
    /// Normal completion (including per-op `ERR` responses).
    Applied,
    /// The stack reported a fault it cannot serve through (the device
    /// needs crash recovery) — quarantine the shard.
    Unrecoverable(String),
}

/// One shard worker: exclusively owns a manager stack, drains its FIFO
/// queue in batches, and runs the final durability barrier when the last
/// queue sender disconnects. Requests are applied under `catch_unwind`; a
/// panic or unrecoverable stack fault quarantines the shard, after which
/// the worker keeps draining its queue with `SHARD_FAILED` responses so
/// no enqueued request is silently dropped.
fn worker_loop<S: ServeSystem>(mut stack: S, rx: Receiver<ShardReq>, ctx: WorkerCtx) -> S {
    let mut read_buf = PageBuf::with_capacity(stack.block_size());
    let mut batch: Vec<ShardReq> = Vec::with_capacity(ctx.batch_max);
    // Applied-PUT ids per session token, for at-most-once retries.
    let mut dedup: HashMap<u64, BTreeSet<u64>> = HashMap::new();
    let mut quarantined = false;
    loop {
        match rx.recv() {
            Ok(req) => batch.push(req),
            Err(_) => break, // all senders gone: queue fully drained
        }
        while batch.len() < ctx.batch_max {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        ctx.counters.batches.fetch_add(1, Ordering::Relaxed);
        ctx.counters
            .batched_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for req in batch.drain(..) {
            if quarantined {
                refuse(req, &ctx.counters);
                continue;
            }
            if let Some(limit) = ctx.shed_timeout {
                if queueing_deadline_expired(&req, limit) {
                    shed(req, &ctx.counters);
                    continue;
                }
            }
            // The stack and scratch buffer cross the unwind boundary; on a
            // panic the stack is never touched again (quarantine), so a
            // torn intermediate state cannot leak into later requests.
            let guarded = catch_unwind(AssertUnwindSafe(|| {
                apply(&mut stack, req, &mut read_buf, &ctx.counters, &mut dedup)
            }));
            match guarded {
                Ok(ApplyOutcome::Applied) => {}
                Ok(ApplyOutcome::Unrecoverable(reason)) => {
                    quarantined = true;
                    ctx.quarantine(reason);
                }
                Err(p) => {
                    // The in-flight request's reply sender died with the
                    // closure; its client converts the missing response
                    // into a deadline timeout.
                    quarantined = true;
                    ctx.quarantine(format!("worker panic: {}", panic_message(&*p)));
                }
            }
        }
    }
    // Shutdown drain: everything enqueued has been applied; make it all
    // crash-durable before releasing the stack. A quarantined stack is
    // returned as-is — it needs crash recovery, not a barrier.
    if !quarantined {
        match catch_unwind(AssertUnwindSafe(|| stack.barrier_flush())) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => {
                ctx.counters.op_errors.fetch_add(1, Ordering::Relaxed);
                if e.is_unrecoverable() {
                    ctx.quarantine(format!("shutdown barrier: {e}"));
                }
            }
            Err(p) => {
                ctx.quarantine(format!("shutdown barrier panic: {}", panic_message(&*p)));
            }
        }
    }
    stack
}

/// Whether a sheddable request outlived its queueing deadline. `FLUSH`
/// legs are exempt: shedding one leg of a fanned-out barrier would corrupt
/// the completion count, and a barrier is exactly the request a client
/// wants late rather than never.
fn queueing_deadline_expired(req: &ShardReq, limit: StdDuration) -> bool {
    match req {
        ShardReq::Get { enqueued, .. } | ShardReq::Put { enqueued, .. } => {
            enqueued.elapsed() > limit
        }
        ShardReq::Flush { .. } => false,
    }
}

/// Sheds one expired request with `BUSY` (a promise it was not applied).
fn shed(req: ShardReq, counters: &Counters) {
    match req {
        ShardReq::Get { req_id, reply, .. } | ShardReq::Put { req_id, reply, .. } => {
            counters.shed_expired.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response {
                req_id,
                status: STATUS_BUSY,
                payload: Vec::new(),
            });
        }
        ShardReq::Flush { .. } => unreachable!("flush legs are never shed"),
    }
}

/// Drains one request on a quarantined shard: `SHARD_FAILED`, nothing
/// applied.
fn refuse(req: ShardReq, counters: &Counters) {
    match req {
        ShardReq::Get { req_id, reply, .. } | ShardReq::Put { req_id, reply, .. } => {
            let _ = reply.send(Response {
                req_id,
                status: STATUS_SHARD_FAILED,
                payload: Vec::new(),
            });
        }
        ShardReq::Flush {
            req_id,
            remaining,
            failed,
            quarantined,
            reply,
        } => {
            failed.store(true, Ordering::Relaxed);
            quarantined.store(true, Ordering::Relaxed);
            finish_flush(req_id, &remaining, &failed, &quarantined, &reply, counters);
        }
    }
}

/// Completes one flush leg: the last shard to decrement sends the single
/// barrier response, degrading its status to the worst leg outcome.
fn finish_flush(
    req_id: u64,
    remaining: &AtomicUsize,
    failed: &AtomicBool,
    quarantined: &AtomicBool,
    reply: &Sender<Response>,
    counters: &Counters,
) {
    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        counters.flushes.fetch_add(1, Ordering::Relaxed);
        let status = if quarantined.load(Ordering::Relaxed) {
            STATUS_SHARD_FAILED
        } else if failed.load(Ordering::Relaxed) {
            STATUS_ERR
        } else {
            STATUS_OK
        };
        let _ = reply.send(Response {
            req_id,
            status,
            payload: Vec::new(),
        });
    }
}

/// Applies one request to the worker's stack and sends the response. A
/// recoverable failure produces a `STATUS_ERR` response, never a dead
/// worker — the client sees the error, the shard keeps serving. An
/// unrecoverable failure answers `SHARD_FAILED` and tells the caller to
/// quarantine.
fn apply<S: ServeSystem>(
    stack: &mut S,
    req: ShardReq,
    read_buf: &mut PageBuf,
    counters: &Counters,
    dedup: &mut HashMap<u64, BTreeSet<u64>>,
) -> ApplyOutcome {
    match req {
        ShardReq::Get {
            req_id, lba, reply, ..
        } => {
            counters.gets.fetch_add(1, Ordering::Relaxed);
            match stack.read_into(lba, read_buf) {
                Ok(cost) => {
                    counters
                        .sim_time_us
                        .fetch_add(cost.as_micros(), Ordering::Relaxed);
                    let _ = reply.send(Response {
                        req_id,
                        status: STATUS_OK,
                        payload: read_buf.to_vec(),
                    });
                    ApplyOutcome::Applied
                }
                Err(e) => {
                    counters.op_errors.fetch_add(1, Ordering::Relaxed);
                    let unrecoverable = e.is_unrecoverable();
                    let _ = reply.send(Response {
                        req_id,
                        status: if unrecoverable {
                            STATUS_SHARD_FAILED
                        } else {
                            STATUS_ERR
                        },
                        payload: Vec::new(),
                    });
                    if unrecoverable {
                        ApplyOutcome::Unrecoverable(format!("get lba {lba}: {e}"))
                    } else {
                        ApplyOutcome::Applied
                    }
                }
            }
        }
        ShardReq::Put {
            req_id,
            lba,
            data,
            dedup: dedup_key,
            reply,
            ..
        } => {
            counters.puts.fetch_add(1, Ordering::Relaxed);
            if let Some((token, id)) = dedup_key {
                if dedup.get(&token).is_some_and(|seen| seen.contains(&id)) {
                    // Already applied: the earlier ack was lost in
                    // transit. Re-ack without touching the stack.
                    counters.deduped_puts.fetch_add(1, Ordering::Relaxed);
                    let _ = reply.send(Response {
                        req_id,
                        status: STATUS_OK,
                        payload: Vec::new(),
                    });
                    return ApplyOutcome::Applied;
                }
            }
            match stack.write(lba, &data) {
                Ok(cost) => {
                    counters
                        .sim_time_us
                        .fetch_add(cost.as_micros(), Ordering::Relaxed);
                    if let Some((token, id)) = dedup_key {
                        // Only *successful* applies are remembered: a
                        // failed PUT must stay re-executable on retry.
                        let seen = dedup.entry(token).or_default();
                        seen.insert(id);
                        if seen.len() > DEDUP_WINDOW {
                            seen.pop_first();
                        }
                    }
                    let _ = reply.send(Response {
                        req_id,
                        status: STATUS_OK,
                        payload: Vec::new(),
                    });
                    ApplyOutcome::Applied
                }
                Err(e) => {
                    counters.op_errors.fetch_add(1, Ordering::Relaxed);
                    let unrecoverable = e.is_unrecoverable();
                    let _ = reply.send(Response {
                        req_id,
                        status: if unrecoverable {
                            STATUS_SHARD_FAILED
                        } else {
                            STATUS_ERR
                        },
                        payload: Vec::new(),
                    });
                    if unrecoverable {
                        ApplyOutcome::Unrecoverable(format!("put lba {lba}: {e}"))
                    } else {
                        ApplyOutcome::Applied
                    }
                }
            }
        }
        ShardReq::Flush {
            req_id,
            remaining,
            failed,
            quarantined,
            reply,
        } => {
            let mut outcome = ApplyOutcome::Applied;
            match stack.barrier_flush() {
                Ok(cost) => {
                    counters
                        .sim_time_us
                        .fetch_add(cost.as_micros(), Ordering::Relaxed);
                }
                Err(e) => {
                    failed.store(true, Ordering::Relaxed);
                    counters.op_errors.fetch_add(1, Ordering::Relaxed);
                    if e.is_unrecoverable() {
                        quarantined.store(true, Ordering::Relaxed);
                        outcome = ApplyOutcome::Unrecoverable(format!("flush: {e}"));
                    }
                }
            }
            finish_flush(req_id, &remaining, &failed, &quarantined, &reply, counters);
            outcome
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    senders: Vec<SyncSender<ShardReq>>,
    router: ShardRouter,
    block_size: u32,
    shards: usize,
    sem: Arc<Semaphore>,
    counters: Arc<Counters>,
    config: ServerConfig,
) {
    // Clones of every live connection keyed by id, so shutdown can unblock
    // readers parked in `read`. Each connection's writer removes its entry
    // on exit — a lingering clone would hold the fd open (the peer would
    // never see EOF) and leak descriptors on a long-running server.
    let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut next_conn_id: u64 = 0;
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        // Socket deadlines: a peer that stalls mid-frame or stops draining
        // responses cannot pin this connection's threads (or its
        // semaphore permit) forever.
        let _ = stream.set_read_timeout(config.read_timeout);
        let _ = stream.set_write_timeout(config.write_timeout);
        // Bound service concurrency: wait for a permit before spawning the
        // connection's threads — but keep watching the stop flag so a
        // shutdown during saturation cannot wedge the accept loop.
        let permit = loop {
            if let Some(p) = sem.acquire_timeout(StdDuration::from_millis(1)) {
                break Some(p);
            }
            if stop.load(Ordering::SeqCst) {
                break None;
            }
        };
        let Some(permit) = permit else { continue };
        counters.connections.fetch_add(1, Ordering::Relaxed);
        let write_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        registry.lock().expect("stream registry poisoned").insert(
            conn_id,
            match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            },
        );
        // Fault injection (testing): read and write directions draw
        // independent, per-connection decorrelated fault sequences.
        let read_transport = FaultyTransport::maybe(
            stream,
            config.net_faults.map(|p| p.decorrelated(conn_id * 2)),
        );
        let write_transport = FaultyTransport::maybe(
            write_stream,
            config.net_faults.map(|p| p.decorrelated(conn_id * 2 + 1)),
        );
        let (reply_tx, reply_rx) = mpsc::channel::<Response>();
        let hello = Hello {
            block_size,
            shards: shards as u32,
        };
        let writer_registry = Arc::clone(&registry);
        let writer_counters = Arc::clone(&counters);
        conn_threads.push(std::thread::spawn(move || {
            // The permit rides with the writer: it is the last thread of
            // the connection to exit (it waits for every queued response).
            let injected = connection_writer(write_transport, reply_rx, hello, permit);
            writer_counters
                .net_faults_injected
                .fetch_add(injected, Ordering::Relaxed);
            // Teardown: push the FIN and drop the registry clone, so the
            // peer sees EOF as soon as the connection is really done.
            if let Some(s) = writer_registry
                .lock()
                .expect("stream registry poisoned")
                .remove(&conn_id)
            {
                let _ = s.shutdown(Shutdown::Both);
            }
        }));
        let senders = senders.clone();
        let counters = Arc::clone(&counters);
        conn_threads.push(std::thread::spawn(move || {
            connection_reader(
                read_transport,
                block_size,
                router,
                senders,
                reply_tx,
                counters,
            );
        }));
    }
    // Graceful stop: sever every connection (readers wake with EOF, their
    // enqueued work still drains through the workers), then wait for all
    // connection threads.
    for s in registry.lock().expect("stream registry poisoned").values() {
        let _ = s.shutdown(Shutdown::Both);
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Classifies a failed `try_send`: `Some(req_id)` for a full queue (shed
/// with `BUSY`), `None` for disconnected workers (shutdown in progress).
fn full_req_id(e: TrySendError<ShardReq>, req_id: u64) -> Option<u64> {
    match e {
        TrySendError::Full(_) => Some(req_id),
        TrySendError::Disconnected(_) => None,
    }
}

/// Decodes frames off one connection and routes them to shard queues in
/// arrival order. Exits on EOF, I/O error, idle timeout, or the first
/// malformed frame. A full shard queue answers `BUSY` immediately instead
/// of blocking this thread (which would head-of-line-block the whole
/// connection behind one hot shard).
fn connection_reader(
    transport: FaultyTransport,
    block_size: u32,
    router: ShardRouter,
    senders: Vec<SyncSender<ShardReq>>,
    reply_tx: Sender<Response>,
    counters: Arc<Counters>,
) {
    let mut r = BufReader::with_capacity(64 * 1024, transport);
    // Session token declared by this connection (retry-dedup key).
    let mut session: Option<u64> = None;
    loop {
        match crate::protocol::read_request(&mut r, block_size) {
            Ok(ReadOutcome::Request(Request::Session { token })) => {
                session = Some(token);
                continue;
            }
            Ok(ReadOutcome::Request(req)) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                let routed: Result<(), Option<u64>> = match req {
                    Request::Get { req_id, lba } => senders[router.shard_of(lba)]
                        .try_send(ShardReq::Get {
                            req_id,
                            lba,
                            enqueued: Instant::now(),
                            reply: reply_tx.clone(),
                        })
                        .map_err(|e| full_req_id(e, req_id)),
                    Request::Put { req_id, lba, data } => senders[router.shard_of(lba)]
                        .try_send(ShardReq::Put {
                            req_id,
                            lba,
                            data,
                            dedup: session.map(|token| (token, req_id)),
                            enqueued: Instant::now(),
                            reply: reply_tx.clone(),
                        })
                        .map_err(|e| full_req_id(e, req_id)),
                    Request::Flush { req_id } => {
                        // A barrier is never shed (see
                        // `queueing_deadline_expired`), so its legs use the
                        // blocking send: partial fan-out would corrupt the
                        // completion count.
                        let remaining = Arc::new(AtomicUsize::new(senders.len()));
                        let failed = Arc::new(AtomicBool::new(false));
                        let quarantined = Arc::new(AtomicBool::new(false));
                        let mut result = Ok(());
                        for tx in &senders {
                            result = result.and(tx.send(ShardReq::Flush {
                                req_id,
                                remaining: Arc::clone(&remaining),
                                failed: Arc::clone(&failed),
                                quarantined: Arc::clone(&quarantined),
                                reply: reply_tx.clone(),
                            }));
                        }
                        result.map_err(|_| None)
                    }
                    Request::Session { .. } => unreachable!("handled above"),
                };
                match routed {
                    Ok(()) => {}
                    Err(Some(req_id)) => {
                        // Overload: shed at the door with a promise the
                        // request was not applied.
                        counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                        if reply_tx
                            .send(Response {
                                req_id,
                                status: STATUS_BUSY,
                                payload: Vec::new(),
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    // Workers only disappear during shutdown.
                    Err(None) => break,
                }
            }
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::Malformed(_)) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // The read timeout fired: the peer stalled mid-frame or
                // went idle. The buffered stream may have consumed a
                // partial frame, so the connection cannot be resumed —
                // evict it (releasing its permit via the writer).
                counters.idle_evictions.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => break,
        }
    }
    counters
        .net_faults_injected
        .fetch_add(r.get_ref().counters().total(), Ordering::Relaxed);
}

/// Serializes responses back onto one connection, flushing whenever the
/// response queue momentarily empties. Exits when every request sender for
/// this connection is gone and the queue is drained. Returns the number of
/// network faults injected on the write direction.
fn connection_writer(
    transport: FaultyTransport,
    reply_rx: Receiver<Response>,
    hello: Hello,
    _permit: crate::semaphore::Permit,
) -> u64 {
    let mut w = BufWriter::with_capacity(64 * 1024, transport);
    let mut broken = hello.write_to(&mut w).is_err() || w.flush().is_err();
    while let Ok(resp) = reply_rx.recv() {
        if !broken {
            broken = resp.write_to(&mut w).is_err();
        }
        // Opportunistically coalesce whatever is already queued, then
        // flush once.
        let mut disconnected = false;
        loop {
            match reply_rx.try_recv() {
                Ok(r) => {
                    if !broken {
                        broken = r.write_to(&mut w).is_err();
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if !broken {
            broken = w.flush().is_err();
        }
        if disconnected {
            break;
        }
    }
    w.get_ref().counters().total()
}
