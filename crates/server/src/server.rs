//! The concurrent cache server.
//!
//! # Architecture
//!
//! ```text
//!  accept loop ──(semaphore permit)──► per-connection reader ─┐
//!                                      per-connection writer ◄┼── responses
//!                                                             │
//!                 shard 0 FIFO queue ◄────────────────────────┤ routed by
//!                 shard 1 FIFO queue ◄────────────────────────┤ ShardRouter(lba)
//!                 shard N FIFO queue ◄────────────────────────┘
//!                        │
//!                 worker thread i — owns manager stack i exclusively
//! ```
//!
//! * **Connection bounding.** The accept loop takes a semaphore permit
//!   before servicing a connection; at the cap it blocks, so load beyond
//!   the bound shows up as connection-queueing delay instead of unbounded
//!   thread growth.
//! * **Per-shard routing, per-LBA ordering.** Each request is routed by a
//!   pure hash of its LBA to exactly one shard queue, and each queue is
//!   drained by exactly one worker that owns its manager stack. Two
//!   invariants follow with no data-path locks: operations on the same LBA
//!   from one connection execute in submission order (mpsc channels are
//!   FIFO per sender), and an *acknowledged* write is visible to every
//!   later request on that LBA from any connection (the ack means the
//!   owning worker already applied it, and that worker serializes the
//!   LBA's subsequent operations).
//! * **Batched submission.** A worker drains up to `batch_max` queued
//!   requests per wakeup and applies them back-to-back against its stack,
//!   amortizing wakeups under load while adding no latency when idle (the
//!   first request is taken with a blocking `recv`).
//! * **Graceful shutdown.** [`Server::shutdown`] stops the accept loop,
//!   unblocks connection readers, lets every already-enqueued request
//!   drain through the workers, then runs each stack through
//!   `barrier_flush` — the durability barrier — before handing the stacks
//!   back to the caller. No acknowledged operation is lost across a
//!   graceful stop followed by crash recovery.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use cachemgr::{CacheSystem, FlashTierWb, FlashTierWt, PageBuf, ShardSet};
use flashtier_core::{ShardRouter, SscDevice};
use simkit::Duration;

use crate::protocol::{Hello, ReadOutcome, Request, Response, STATUS_ERR, STATUS_OK};
use crate::semaphore::Semaphore;

/// A cache stack the server can front: any [`CacheSystem`] that can also
/// run a durability barrier (the shutdown drain) and move across threads.
pub trait ServeSystem: CacheSystem + Send {
    /// Synchronously commits all buffered log records (see
    /// `SscDevice::barrier_flush`).
    ///
    /// # Errors
    ///
    /// Device faults during the commit.
    fn barrier_flush(&mut self) -> cachemgr::Result<Duration>;
}

impl<D: SscDevice + Send> ServeSystem for FlashTierWt<D> {
    fn barrier_flush(&mut self) -> cachemgr::Result<Duration> {
        FlashTierWt::barrier_flush(self)
    }
}

impl<D: SscDevice + Send> ServeSystem for FlashTierWb<D> {
    fn barrier_flush(&mut self) -> cachemgr::Result<Duration> {
        FlashTierWb::barrier_flush(self)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Maximum connections serviced concurrently; further accepts wait.
    pub max_connections: usize,
    /// Bounded depth of each shard's request queue (back-pressure).
    pub queue_depth: usize,
    /// Maximum requests a worker applies per wakeup.
    pub batch_max: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 256,
            queue_depth: 1024,
            batch_max: 64,
        }
    }
}

/// Shared atomic counters, snapshotted into [`ServerStats`].
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    gets: AtomicU64,
    puts: AtomicU64,
    flushes: AtomicU64,
    op_errors: AtomicU64,
    protocol_errors: AtomicU64,
    batches: AtomicU64,
    batched_ops: AtomicU64,
    sim_time_us: AtomicU64,
}

/// A point-in-time snapshot of server activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and serviced.
    pub connections: u64,
    /// Requests decoded off the wire.
    pub requests: u64,
    /// `GET` operations completed.
    pub gets: u64,
    /// `PUT` operations completed.
    pub puts: u64,
    /// `FLUSH` barriers completed (counted once per barrier).
    pub flushes: u64,
    /// Operations that failed server-side (status `ERR` responses).
    pub op_errors: u64,
    /// Connections dropped for malformed frames.
    pub protocol_errors: u64,
    /// Worker wakeups (each applied one batch).
    pub batches: u64,
    /// Requests applied through batches (mean batch = `batched_ops /
    /// batches`).
    pub batched_ops: u64,
    /// Total simulated device time accumulated across all shards, µs.
    pub sim_time_us: u64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            op_errors: self.op_errors.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_ops: self.batched_ops.load(Ordering::Relaxed),
            sim_time_us: self.sim_time_us.load(Ordering::Relaxed),
        }
    }
}

/// One routed unit of work on a shard queue.
enum ShardReq {
    Get {
        req_id: u64,
        lba: u64,
        reply: Sender<Response>,
    },
    Put {
        req_id: u64,
        lba: u64,
        data: Vec<u8>,
        reply: Sender<Response>,
    },
    /// One leg of a fanned-out durability barrier; the last shard to
    /// finish sends the single response.
    Flush {
        req_id: u64,
        remaining: Arc<AtomicUsize>,
        failed: Arc<AtomicBool>,
        reply: Sender<Response>,
    },
}

/// A running cache server. Dropping the handle without calling
/// [`Server::shutdown`] aborts the process threads detached — always shut
/// down explicitly to drain.
#[derive(Debug)]
pub struct Server<S: ServeSystem + 'static> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    senders: Vec<SyncSender<ShardReq>>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<S>>,
    router: ShardRouter,
    counters: Arc<Counters>,
}

/// What a graceful shutdown hands back.
#[derive(Debug)]
pub struct ShutdownReport<S> {
    /// The drained manager stacks, reassembled with their router.
    pub stacks: ShardSet<S>,
    /// Final activity counters.
    pub stats: ServerStats,
}

impl<S: ServeSystem + 'static> Server<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and one worker per shard. Each worker takes exclusive
    /// ownership of its stack.
    ///
    /// # Errors
    ///
    /// Socket bind/listen failures.
    pub fn start<A: ToSocketAddrs>(
        set: ShardSet<S>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Server<S>> {
        assert!(config.max_connections > 0, "need at least one connection");
        assert!(config.queue_depth > 0, "need a non-empty shard queue");
        assert!(config.batch_max > 0, "need a non-empty batch");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let (stacks, router) = set.into_shards();
        let block_size = stacks[0].block_size() as u32;
        let shards = stacks.len();
        let counters = Arc::new(Counters::default());
        let stop = Arc::new(AtomicBool::new(false));

        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for stack in stacks {
            let (tx, rx) = mpsc::sync_channel::<ShardReq>(config.queue_depth);
            senders.push(tx);
            let counters = Arc::clone(&counters);
            let batch_max = config.batch_max;
            workers.push(std::thread::spawn(move || {
                worker_loop(stack, rx, counters, batch_max)
            }));
        }

        let accept = {
            let senders = senders.clone();
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let sem = Semaphore::new(config.max_connections);
            std::thread::spawn(move || {
                accept_loop(
                    listener, stop, senders, router, block_size, shards, sem, counters,
                )
            })
        };

        Ok(Server {
            addr: local,
            stop,
            senders,
            accept,
            workers,
            router,
            counters,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router placing LBAs onto shards.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// A live snapshot of the activity counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }

    /// Graceful shutdown: stop accepting, unblock and join every
    /// connection, drain all queued requests through the workers, run the
    /// `barrier_flush` durability barrier on every stack, and hand the
    /// stacks back.
    pub fn shutdown(self) -> ShutdownReport<S> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.accept.join().expect("accept thread panicked");
        // All connections are joined; dropping the last senders lets each
        // worker drain its queue, flush, and return its stack.
        drop(self.senders);
        let stacks: Vec<S> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        ShutdownReport {
            stacks: ShardSet::from_parts(stacks, self.router),
            stats: self.counters.snapshot(),
        }
    }
}

/// One shard worker: exclusively owns a manager stack, drains its FIFO
/// queue in batches, and runs the final durability barrier when the last
/// queue sender disconnects.
fn worker_loop<S: ServeSystem>(
    mut stack: S,
    rx: Receiver<ShardReq>,
    counters: Arc<Counters>,
    batch_max: usize,
) -> S {
    let mut read_buf = PageBuf::with_capacity(stack.block_size());
    let mut batch: Vec<ShardReq> = Vec::with_capacity(batch_max);
    loop {
        match rx.recv() {
            Ok(req) => batch.push(req),
            Err(_) => break, // all senders gone: queue fully drained
        }
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }
        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters
            .batched_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for req in batch.drain(..) {
            apply(&mut stack, req, &mut read_buf, &counters);
        }
    }
    // Shutdown drain: everything enqueued has been applied; make it all
    // crash-durable before releasing the stack.
    if stack.barrier_flush().is_err() {
        counters.op_errors.fetch_add(1, Ordering::Relaxed);
    }
    stack
}

/// Applies one request to the worker's stack and sends the response. A
/// failed operation produces a `STATUS_ERR` response, never a dead worker
/// — the client sees the error, the shard keeps serving.
fn apply<S: ServeSystem>(
    stack: &mut S,
    req: ShardReq,
    read_buf: &mut PageBuf,
    counters: &Counters,
) {
    match req {
        ShardReq::Get { req_id, lba, reply } => {
            let resp = match stack.read_into(lba, read_buf) {
                Ok(cost) => {
                    counters
                        .sim_time_us
                        .fetch_add(cost.as_micros(), Ordering::Relaxed);
                    Response {
                        req_id,
                        status: STATUS_OK,
                        payload: read_buf.to_vec(),
                    }
                }
                Err(_) => {
                    counters.op_errors.fetch_add(1, Ordering::Relaxed);
                    Response {
                        req_id,
                        status: STATUS_ERR,
                        payload: Vec::new(),
                    }
                }
            };
            counters.gets.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(resp);
        }
        ShardReq::Put {
            req_id,
            lba,
            data,
            reply,
        } => {
            let resp = match stack.write(lba, &data) {
                Ok(cost) => {
                    counters
                        .sim_time_us
                        .fetch_add(cost.as_micros(), Ordering::Relaxed);
                    Response {
                        req_id,
                        status: STATUS_OK,
                        payload: Vec::new(),
                    }
                }
                Err(_) => {
                    counters.op_errors.fetch_add(1, Ordering::Relaxed);
                    Response {
                        req_id,
                        status: STATUS_ERR,
                        payload: Vec::new(),
                    }
                }
            };
            counters.puts.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(resp);
        }
        ShardReq::Flush {
            req_id,
            remaining,
            failed,
            reply,
        } => {
            match stack.barrier_flush() {
                Ok(cost) => {
                    counters
                        .sim_time_us
                        .fetch_add(cost.as_micros(), Ordering::Relaxed);
                }
                Err(_) => {
                    failed.store(true, Ordering::Relaxed);
                    counters.op_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            // The last shard to finish the barrier acknowledges it.
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                counters.flushes.fetch_add(1, Ordering::Relaxed);
                let status = if failed.load(Ordering::Relaxed) {
                    STATUS_ERR
                } else {
                    STATUS_OK
                };
                let _ = reply.send(Response {
                    req_id,
                    status,
                    payload: Vec::new(),
                });
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    senders: Vec<SyncSender<ShardReq>>,
    router: ShardRouter,
    block_size: u32,
    shards: usize,
    sem: Arc<Semaphore>,
    counters: Arc<Counters>,
) {
    // Clones of every live connection keyed by id, so shutdown can unblock
    // readers parked in `read`. Each connection's writer removes its entry
    // on exit — a lingering clone would hold the fd open (the peer would
    // never see EOF) and leak descriptors on a long-running server.
    let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut next_conn_id: u64 = 0;
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        // Bound service concurrency: wait for a permit before spawning the
        // connection's threads — but keep watching the stop flag so a
        // shutdown during saturation cannot wedge the accept loop.
        let permit = loop {
            if let Some(p) = sem.try_acquire() {
                break Some(p);
            }
            if stop.load(Ordering::SeqCst) {
                break None;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        let Some(permit) = permit else { continue };
        counters.connections.fetch_add(1, Ordering::Relaxed);
        let write_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        registry.lock().expect("stream registry poisoned").insert(
            conn_id,
            match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            },
        );
        let (reply_tx, reply_rx) = mpsc::channel::<Response>();
        let hello = Hello {
            block_size,
            shards: shards as u32,
        };
        let writer_registry = Arc::clone(&registry);
        conn_threads.push(std::thread::spawn(move || {
            // The permit rides with the writer: it is the last thread of
            // the connection to exit (it waits for every queued response).
            connection_writer(write_stream, reply_rx, hello, permit);
            // Teardown: push the FIN and drop the registry clone, so the
            // peer sees EOF as soon as the connection is really done.
            if let Some(s) = writer_registry
                .lock()
                .expect("stream registry poisoned")
                .remove(&conn_id)
            {
                let _ = s.shutdown(Shutdown::Both);
            }
        }));
        let senders = senders.clone();
        let counters = Arc::clone(&counters);
        conn_threads.push(std::thread::spawn(move || {
            connection_reader(stream, block_size, router, senders, reply_tx, counters);
        }));
    }
    // Graceful stop: sever every connection (readers wake with EOF, their
    // enqueued work still drains through the workers), then wait for all
    // connection threads.
    for s in registry.lock().expect("stream registry poisoned").values() {
        let _ = s.shutdown(Shutdown::Both);
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Decodes frames off one connection and routes them to shard queues in
/// arrival order. Exits on EOF, I/O error, or the first malformed frame.
fn connection_reader(
    stream: TcpStream,
    block_size: u32,
    router: ShardRouter,
    senders: Vec<SyncSender<ShardReq>>,
    reply_tx: Sender<Response>,
    counters: Arc<Counters>,
) {
    let mut r = BufReader::with_capacity(64 * 1024, stream);
    loop {
        match crate::protocol::read_request(&mut r, block_size) {
            Ok(ReadOutcome::Request(req)) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                let routed = match req {
                    Request::Get { req_id, lba } => {
                        senders[router.shard_of(lba)].send(ShardReq::Get {
                            req_id,
                            lba,
                            reply: reply_tx.clone(),
                        })
                    }
                    Request::Put { req_id, lba, data } => {
                        senders[router.shard_of(lba)].send(ShardReq::Put {
                            req_id,
                            lba,
                            data,
                            reply: reply_tx.clone(),
                        })
                    }
                    Request::Flush { req_id } => {
                        let remaining = Arc::new(AtomicUsize::new(senders.len()));
                        let failed = Arc::new(AtomicBool::new(false));
                        let mut result = Ok(());
                        for tx in &senders {
                            result = result.and(tx.send(ShardReq::Flush {
                                req_id,
                                remaining: Arc::clone(&remaining),
                                failed: Arc::clone(&failed),
                                reply: reply_tx.clone(),
                            }));
                        }
                        result
                    }
                };
                if routed.is_err() {
                    // Workers only disappear during shutdown.
                    return;
                }
            }
            Ok(ReadOutcome::Eof) => return,
            Ok(ReadOutcome::Malformed(_)) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return,
        }
    }
}

/// Serializes responses back onto one connection, flushing whenever the
/// response queue momentarily empties. Exits when every request sender for
/// this connection is gone and the queue is drained.
fn connection_writer(
    stream: TcpStream,
    reply_rx: Receiver<Response>,
    hello: Hello,
    _permit: crate::semaphore::Permit,
) {
    let mut w = BufWriter::with_capacity(64 * 1024, stream);
    let mut broken = hello.write_to(&mut w).is_err() || w.flush().is_err();
    loop {
        let resp = match reply_rx.recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        if !broken {
            broken = resp.write_to(&mut w).is_err();
        }
        // Opportunistically coalesce whatever is already queued, then
        // flush once.
        loop {
            match reply_rx.try_recv() {
                Ok(r) => {
                    if !broken {
                        broken = r.write_to(&mut w).is_err();
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    if !broken {
                        let _ = w.flush();
                    }
                    return;
                }
            }
        }
        if !broken {
            broken = w.flush().is_err();
        }
    }
}
