//! A fault-tolerant protocol client: deadlines, reconnect, seeded-jitter
//! exponential backoff, and idempotent resend.
//!
//! [`RetryingClient`] wraps the block protocol with the client half of the
//! serve-path failure model (DESIGN.md §12):
//!
//! * **Every call has a deadline.** `get`/`put`/`flush` either return a
//!   response or fail with `TimedOut` within `op_deadline` — socket
//!   timeouts are re-armed before every attempt to `min(io_timeout,
//!   remaining)`, so no attempt can sleep past the budget.
//! * **Connection failures are survived, not surfaced.** Any transport
//!   error tears the connection down and the call retries on a fresh one
//!   after seeded-jitter exponential backoff. Request ids keep counting
//!   across reconnects, which is what makes resends *identifiable*.
//! * **Retried PUTs are applied at most once.** The client declares a
//!   session token on every connection (a `SESSION` frame precedes the
//!   first request); the server remembers which `(token, req_id)` PUTs it
//!   applied, so a resent PUT whose ack was lost is re-acked, not
//!   re-applied. GET and FLUSH are naturally idempotent.
//! * **`BUSY` means "not applied, try later"** — the client backs off and
//!   resends on the same connection. `SHARD_FAILED` and `ERR` are final
//!   answers, returned to the caller.
//!
//! One request is outstanding at a time, so responses pair with requests
//! positionally; a response carrying the wrong id means the stream lost
//! sync and is treated as a transport error. The client can inject its own
//! deterministic network faults ([`NetFaultPlan`]) for torture tests —
//! every reconnect decorrelates the fault seed, so a deterministic reset
//! at operation 0 cannot livelock the retry loop.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration as StdDuration, Instant};

use crate::netfault::{FaultyTransport, NetFaultCounters, NetFaultPlan};
use crate::protocol::{Hello, Request, Response, STATUS_BUSY};

/// Retry/timeout policy for a [`RetryingClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Seed for backoff jitter (and nothing else) — runs with the same
    /// seed draw the same jitter sequence.
    pub seed: u64,
    /// Total per-call budget, connect and retries included.
    pub op_deadline: StdDuration,
    /// TCP connect timeout per attempt (further capped by the remaining
    /// op budget).
    pub connect_timeout: StdDuration,
    /// Socket read/write timeout per attempt (further capped by the
    /// remaining op budget).
    pub io_timeout: StdDuration,
    /// First backoff step; doubles per consecutive failure.
    pub backoff_base: StdDuration,
    /// Backoff ceiling.
    pub backoff_cap: StdDuration,
    /// Hard cap on attempts per call (a backstop behind the deadline).
    pub max_attempts: u32,
    /// Client-side deterministic fault injection; `None` is the clean
    /// path.
    pub net_faults: Option<NetFaultPlan>,
}

impl RetryConfig {
    /// A policy for tests and torture runs against a local server: tight
    /// enough to converge fast, generous enough to ride out injected
    /// fault bursts.
    pub fn default_for(seed: u64) -> Self {
        RetryConfig {
            seed,
            op_deadline: StdDuration::from_secs(10),
            connect_timeout: StdDuration::from_secs(2),
            io_timeout: StdDuration::from_secs(2),
            backoff_base: StdDuration::from_millis(2),
            backoff_cap: StdDuration::from_millis(200),
            max_attempts: 64,
            net_faults: None,
        }
    }
}

/// What the retry machinery did on behalf of the caller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Successful connections established (1 for a fault-free life).
    pub connects: u64,
    /// Requests resent after a transport error.
    pub retries: u64,
    /// Requests resent after a `BUSY` (shed) response.
    pub busy_retries: u64,
    /// Calls that exhausted their deadline or attempt budget.
    pub deadline_failures: u64,
    /// Client-side injected faults, summed over all connections.
    pub net_faults: NetFaultCounters,
}

/// One live connection (split halves over independently faulted clones).
#[derive(Debug)]
struct Conn {
    r: BufReader<FaultyTransport>,
    w: BufWriter<FaultyTransport>,
}

/// A protocol client that retries through connection failures and
/// overload, with per-call deadlines and at-most-once PUT semantics.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    cfg: RetryConfig,
    /// Session token declared on every connection (the dedup key).
    session: u64,
    /// Monotone across reconnects — a resent request keeps its id.
    next_id: u64,
    block_size: usize,
    conn: Option<Conn>,
    /// Connection attempts started (salts per-connection fault seeds, so
    /// failed attempts also decorrelate).
    conn_epoch: u64,
    /// Jitter draws so far.
    jitter_draws: u64,
    stats: RetryStats,
}

/// Time left before `deadline`, as a `TimedOut` error once spent. The
/// floor of 1 ms keeps the value usable as a socket timeout (zero means
/// "no timeout" to the socket API, the opposite of what a spent budget
/// wants).
fn remaining_budget(deadline: Instant) -> io::Result<StdDuration> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "op deadline exceeded",
        ));
    }
    Ok(remaining.max(StdDuration::from_millis(1)))
}

/// SplitMix64 finalizer (same as `netfault::mix`, private there).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryingClient {
    /// Connects (retrying within one `op_deadline`) and declares
    /// `session` as this client's retry-stable identity. Tokens must be
    /// unique per logical client or dedup histories collide.
    ///
    /// # Errors
    ///
    /// No connection could be established within the deadline.
    pub fn connect(addr: SocketAddr, session: u64, cfg: RetryConfig) -> io::Result<RetryingClient> {
        let mut client = RetryingClient {
            addr,
            cfg,
            session,
            next_id: 0,
            block_size: 0,
            conn: None,
            conn_epoch: 0,
            jitter_draws: 0,
            stats: RetryStats::default(),
        };
        let deadline = Instant::now() + cfg.op_deadline;
        let mut attempt = 0u32;
        loop {
            match client.ensure_conn(deadline) {
                Ok(()) => return Ok(client),
                Err(e) => {
                    attempt += 1;
                    client.backoff_or_give_up(attempt, deadline, &e)?;
                }
            }
        }
    }

    /// Device block size from the server hello.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Retry activity so far (live connection's fault counters included).
    pub fn stats(&self) -> RetryStats {
        let mut s = self.stats;
        if let Some(conn) = &self.conn {
            s.net_faults = s
                .net_faults
                .merged(&conn.r.get_ref().counters())
                .merged(&conn.w.get_ref().counters());
        }
        s
    }

    /// Reads one block. Status `BUSY` is absorbed by retry; any other
    /// status is returned.
    ///
    /// # Errors
    ///
    /// Deadline or attempt budget exhausted.
    pub fn get(&mut self, lba: u64) -> io::Result<Response> {
        let req_id = self.take_id();
        self.call(Request::Get { req_id, lba })
    }

    /// Writes one block, applied at most once however many times the
    /// transport makes us resend it.
    ///
    /// # Errors
    ///
    /// A payload that is not exactly one block, or deadline/attempt
    /// budget exhausted.
    pub fn put(&mut self, lba: u64, data: &[u8]) -> io::Result<Response> {
        if data.len() != self.block_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "payload is {} B, device block is {} B",
                    data.len(),
                    self.block_size
                ),
            ));
        }
        let req_id = self.take_id();
        self.call(Request::Put {
            req_id,
            lba,
            data: data.to_vec(),
        })
    }

    /// Runs a whole-device durability barrier (idempotent, so freely
    /// retried).
    ///
    /// # Errors
    ///
    /// Deadline or attempt budget exhausted.
    pub fn flush(&mut self) -> io::Result<Response> {
        let req_id = self.take_id();
        self.call(Request::Flush { req_id })
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The retry loop: attempt, classify, back off, resend — until a
    /// final response or the deadline.
    fn call(&mut self, req: Request) -> io::Result<Response> {
        let deadline = Instant::now() + self.cfg.op_deadline;
        let req_id = req.req_id();
        let mut attempt = 0u32;
        loop {
            let failure = match self.try_once(&req, deadline) {
                Ok(resp) if resp.req_id != req_id => {
                    // Lost sync — possible only if the stream corrupted;
                    // treat like any transport failure.
                    self.teardown();
                    self.stats.retries += 1;
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response id {} for request {req_id}", resp.req_id),
                    )
                }
                Ok(resp) if resp.status == STATUS_BUSY => {
                    // Shed before being applied: the server is healthy but
                    // loaded. Keep the connection, slow down, resend.
                    self.stats.busy_retries += 1;
                    io::Error::new(io::ErrorKind::WouldBlock, "server shed the request")
                }
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.teardown();
                    self.stats.retries += 1;
                    e
                }
            };
            attempt += 1;
            self.backoff_or_give_up(attempt, deadline, &failure)?;
        }
    }

    /// One attempt: connect if needed, re-arm socket deadlines to the
    /// remaining budget, send, await the response.
    fn try_once(&mut self, req: &Request, deadline: Instant) -> io::Result<Response> {
        self.ensure_conn(deadline)?;
        let cap = remaining_budget(deadline)?.min(self.cfg.io_timeout);
        let conn = self.conn.as_mut().expect("ensured above");
        conn.r.get_ref().stream().set_read_timeout(Some(cap))?;
        conn.w.get_ref().stream().set_write_timeout(Some(cap))?;
        req.write_to(&mut conn.w)?;
        conn.w.flush()?;
        Response::read_from(&mut conn.r)
    }

    /// Establishes a connection if none is live: connect, hello, declare
    /// the session. Timeouts are capped by the remaining op budget.
    fn ensure_conn(&mut self, deadline: Instant) -> io::Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let remaining = remaining_budget(deadline)?;
        let epoch = self.conn_epoch;
        self.conn_epoch += 1;
        let stream =
            TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout.min(remaining))?;
        stream.set_nodelay(true)?;
        let io_cap = remaining_budget(deadline)?.min(self.cfg.io_timeout);
        stream.set_read_timeout(Some(io_cap))?;
        stream.set_write_timeout(Some(io_cap))?;
        let write_stream = stream.try_clone()?;
        // Fresh fault seeds per direction per connection attempt: a
        // deterministic reset at op 0 must not refire on the reconnect.
        let mut r = BufReader::with_capacity(
            64 * 1024,
            FaultyTransport::maybe(
                stream,
                self.cfg.net_faults.map(|p| p.decorrelated(epoch * 2)),
            ),
        );
        let w = FaultyTransport::maybe(
            write_stream,
            self.cfg.net_faults.map(|p| p.decorrelated(epoch * 2 + 1)),
        );
        let hello = match Hello::read_from(&mut r) {
            Ok(h) => h,
            Err(e) => {
                self.stats.net_faults = self.stats.net_faults.merged(&r.get_ref().counters());
                return Err(e);
            }
        };
        if self.block_size != 0 && self.block_size != hello.block_size as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server block size changed across reconnect",
            ));
        }
        self.block_size = hello.block_size as usize;
        let mut w = BufWriter::with_capacity(64 * 1024, w);
        // Buffered; rides to the wire with the first request.
        Request::Session {
            token: self.session,
        }
        .write_to(&mut w)?;
        self.conn = Some(Conn { r, w });
        self.stats.connects += 1;
        Ok(())
    }

    /// Drops the connection, folding its fault counters into the stats.
    fn teardown(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.stats.net_faults = self
                .stats
                .net_faults
                .merged(&conn.r.get_ref().counters())
                .merged(&conn.w.get_ref().counters());
        }
    }

    /// Sleeps the jittered exponential backoff for `attempt`, or fails the
    /// call if the deadline or attempt budget is spent.
    fn backoff_or_give_up(
        &mut self,
        attempt: u32,
        deadline: Instant,
        failure: &io::Error,
    ) -> io::Result<()> {
        if attempt >= self.cfg.max_attempts {
            self.stats.deadline_failures += 1;
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("retry budget ({attempt} attempts) exhausted; last: {failure}"),
            ));
        }
        let now = Instant::now();
        if now >= deadline {
            self.stats.deadline_failures += 1;
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("op deadline exceeded after {attempt} attempts; last: {failure}"),
            ));
        }
        // base · 2^(attempt-1), capped, jittered to [0.5, 1.5) so retrying
        // clients desynchronize, and never sleeping past the deadline.
        let exp = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.cfg.backoff_cap);
        let draw = self.jitter_draws;
        self.jitter_draws += 1;
        let jitter = 0.5 + (mix(self.cfg.seed ^ draw) % 1024) as f64 / 1024.0;
        let sleep = exp.mul_f64(jitter).min(deadline - now);
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let cfg = RetryConfig::default_for(7);
        let mk = || RetryingClient {
            addr: "127.0.0.1:1".parse().unwrap(),
            cfg,
            session: 0,
            next_id: 0,
            block_size: 512,
            conn: None,
            conn_epoch: 0,
            jitter_draws: 0,
            stats: RetryStats::default(),
        };
        // Two clients with the same seed draw the same jitter sequence;
        // we can observe it through elapsed sleep times being equal-ish,
        // but directly checking the hash is deterministic is cheaper.
        let a: Vec<u64> = (0..10).map(|i| mix(7 ^ i) % 1024).collect();
        let b: Vec<u64> = (0..10).map(|i| mix(7 ^ i) % 1024).collect();
        assert_eq!(a, b);
        // The deadline guard fires once spent.
        let mut c = mk();
        let past = Instant::now() - StdDuration::from_secs(1);
        let err = c
            .backoff_or_give_up(1, past, &io::Error::other("x"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(c.stats().deadline_failures, 1);
        // The attempt budget is a hard backstop.
        let mut c = mk();
        let future = Instant::now() + StdDuration::from_secs(60);
        let err = c
            .backoff_or_give_up(cfg.max_attempts, future, &io::Error::other("x"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn connect_to_dead_address_times_out_within_deadline() {
        let mut cfg = RetryConfig::default_for(1);
        cfg.op_deadline = StdDuration::from_millis(300);
        cfg.connect_timeout = StdDuration::from_millis(50);
        cfg.backoff_base = StdDuration::from_millis(1);
        cfg.backoff_cap = StdDuration::from_millis(10);
        // A bound-but-not-listening port: grab one, drop the listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let start = Instant::now();
        let err = RetryingClient::connect(addr, 9, cfg).unwrap_err();
        assert!(
            start.elapsed() < StdDuration::from_secs(5),
            "connect retry loop must respect the op deadline"
        );
        // Either refused immediately (deadline loop converts to TimedOut
        // once budget is spent) or timed out; both are deadline-bounded.
        let _ = err;
    }
}
