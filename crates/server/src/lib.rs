//! A concurrent cache-server front-end for the FlashTier stack.
//!
//! FlashTier positions the SSC under a live cache manager serving
//! foreground I/O; production flash caches (Flashield, memcached-on-flash)
//! are *services* evaluated under concurrent client load with tail-latency
//! SLOs. This crate puts that service layer on top of the sharded
//! managers: a block-`GET`/`PUT`/`FLUSH` protocol server
//! ([`Server`]) fronting a share-nothing [`cachemgr::ShardSet`] of
//! `FlashTierWt`/`FlashTierWb` stacks, with
//!
//! * semaphore-bounded connections (back-pressure instead of unbounded
//!   thread growth),
//! * per-shard request routing that preserves per-LBA ordering with no
//!   data-path locks,
//! * batched submission into each manager behind one worker per shard, and
//! * graceful shutdown that drains in-flight operations through the
//!   `barrier_flush` durability barrier and returns the stacks.
//!
//! The workspace builds offline with no async runtime available, so the
//! server is plain `std::net` blocking I/O on OS threads — the
//! architecture (bounded accept, share-nothing shard workers, pipelined
//! connections) is runtime-agnostic and is exactly what a tokio front-end
//! would schedule onto tasks instead of threads.
//!
//! See `DESIGN.md` §11 for the ordering and drain guarantees, and the
//! `perf_serve` binary in `flashtier-bench` for the open-loop load
//! generator that measures p50/p99/p999 latency and saturation throughput
//! against this server.

pub mod client;
pub mod netfault;
pub mod protocol;
pub mod retry;
pub mod semaphore;
pub mod server;

pub use client::{BlockClient, RecvHalf, SendHalf};
pub use netfault::{FaultyTransport, NetFaultCounters, NetFaultPlan};
pub use protocol::{
    Hello, Request, Response, STATUS_BUSY, STATUS_ERR, STATUS_OK, STATUS_SHARD_FAILED,
};
pub use retry::{RetryConfig, RetryStats, RetryingClient};
pub use semaphore::{Permit, Semaphore};
pub use server::{
    ServeSystem, Server, ServerConfig, ServerStats, ShardHealthStatus, ShutdownReport,
};
