//! The block-cache wire protocol.
//!
//! A deliberately small binary protocol, little-endian throughout:
//!
//! ```text
//! hello    (server → client, once):  "FT" | version:u8 | 0 | block_size:u32 | shards:u32
//! request  (client → server):        op:u8 | req_id:u64 | lba:u64 | len:u32 | payload[len]
//! response (server → client):        req_id:u64 | status:u8 | len:u32 | payload[len]
//! ```
//!
//! Three operations: `GET` (read one block; the response carries the
//! data), `PUT` (write one block; `len` must equal the device block size),
//! and `FLUSH` (a whole-device durability barrier; the response arrives
//! after every shard has drained its group-commit buffer). Responses are
//! matched to requests by `req_id`, chosen by the client — the server may
//! complete requests out of order across LBAs, but never reorders two
//! operations on the same LBA.
//!
//! A fourth, optional frame — `SESSION` — declares a client identity that
//! survives reconnects. A client that intends to *retry* requests across
//! connection failures sends it once, before its first request; the server
//! then deduplicates retried `PUT`s by `(session token, req_id)`, so a
//! write whose acknowledgement was lost in transit is applied at most once
//! even when the client resends it on a fresh connection. The frame gets
//! no response (it is a declaration, not an operation), and clients that
//! never retry never need to send it.
//!
//! Framing errors are unrecoverable for the connection (the byte stream
//! has lost sync); the server counts them and closes the connection.
//! `STATUS_BUSY` and `STATUS_SHARD_FAILED` are *per-request* failure
//! signals layered above framing: `BUSY` means the request was shed under
//! overload and is safe to retry; `SHARD_FAILED` means the shard owning
//! the LBA is quarantined and retrying cannot help.

use std::io::{self, Read, Write};

/// Protocol magic ("FT") and version, leading every hello frame.
pub const MAGIC: [u8; 2] = *b"FT";
/// Current protocol version.
pub const VERSION: u8 = 1;

/// Opcode for a block read.
pub const OP_GET: u8 = 1;
/// Opcode for a block write.
pub const OP_PUT: u8 = 2;
/// Opcode for a whole-device durability barrier.
pub const OP_FLUSH: u8 = 3;
/// Opcode declaring a retry-stable client identity (no response frame).
pub const OP_SESSION: u8 = 4;

/// Response status: success.
pub const STATUS_OK: u8 = 0;
/// Response status: the operation failed server-side (device fault, LBA
/// out of range). The connection stays usable.
pub const STATUS_ERR: u8 = 1;
/// Response status: the request was shed under overload (shard queue full
/// or its queueing deadline expired) *without* being applied. Retryable.
pub const STATUS_BUSY: u8 = 2;
/// Response status: the shard owning this LBA is quarantined (its worker
/// panicked or its stack reported an unrecoverable fault). The request was
/// not applied and retrying cannot succeed until the server restarts.
pub const STATUS_SHARD_FAILED: u8 = 3;

/// Hard upper bound on any frame payload, guarding the server against a
/// hostile or corrupt length field.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// What the server tells a client on connect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Data-path block size in bytes; `PUT` payloads must be exactly this.
    pub block_size: u32,
    /// Number of shards behind the server (informational).
    pub shards: u32,
}

impl Hello {
    /// Serializes the hello frame.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut frame = [0u8; 12];
        frame[..2].copy_from_slice(&MAGIC);
        frame[2] = VERSION;
        frame[4..8].copy_from_slice(&self.block_size.to_le_bytes());
        frame[8..12].copy_from_slice(&self.shards.to_le_bytes());
        w.write_all(&frame)
    }

    /// Reads and validates the hello frame.
    ///
    /// # Errors
    ///
    /// I/O failure, bad magic, or an unsupported version.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Hello> {
        let mut frame = [0u8; 12];
        r.read_exact(&mut frame)?;
        if frame[..2] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        if frame[2] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported protocol version {}", frame[2]),
            ));
        }
        Ok(Hello {
            block_size: u32::from_le_bytes(frame[4..8].try_into().unwrap()),
            shards: u32::from_le_bytes(frame[8..12].try_into().unwrap()),
        })
    }
}

/// One decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read the block at `lba`.
    Get {
        /// Client-chosen id echoed in the response.
        req_id: u64,
        /// Logical block address.
        lba: u64,
    },
    /// Write one block of data at `lba`.
    Put {
        /// Client-chosen id echoed in the response.
        req_id: u64,
        /// Logical block address.
        lba: u64,
        /// Exactly one block of data.
        data: Vec<u8>,
    },
    /// Whole-device durability barrier.
    Flush {
        /// Client-chosen id echoed in the response.
        req_id: u64,
    },
    /// Retry-stable client identity declaration (carried in the `lba`
    /// field on the wire; no response).
    Session {
        /// Client-chosen token, stable across reconnects.
        token: u64,
    },
}

impl Request {
    /// The client-chosen request id (`0` for the un-acknowledged
    /// `Session` frame).
    pub fn req_id(&self) -> u64 {
        match self {
            Request::Get { req_id, .. }
            | Request::Put { req_id, .. }
            | Request::Flush { req_id } => *req_id,
            Request::Session { .. } => 0,
        }
    }

    /// Serializes the request frame.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let (op, req_id, lba, data): (u8, u64, u64, &[u8]) = match self {
            Request::Get { req_id, lba } => (OP_GET, *req_id, *lba, &[]),
            Request::Put { req_id, lba, data } => (OP_PUT, *req_id, *lba, data),
            Request::Flush { req_id } => (OP_FLUSH, *req_id, 0, &[]),
            Request::Session { token } => (OP_SESSION, 0, *token, &[]),
        };
        let mut header = [0u8; 21];
        header[0] = op;
        header[1..9].copy_from_slice(&req_id.to_le_bytes());
        header[9..17].copy_from_slice(&lba.to_le_bytes());
        header[17..21].copy_from_slice(&(data.len() as u32).to_le_bytes());
        w.write_all(&header)?;
        if !data.is_empty() {
            w.write_all(data)?;
        }
        Ok(())
    }
}

/// Outcome of reading one request frame.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A well-formed request.
    Request(Request),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// The byte stream is out of sync (unknown opcode, oversized or
    /// mis-sized payload); the connection must be closed.
    Malformed(String),
}

/// Reads one request frame. `block_size` bounds `PUT` payloads: anything
/// other than exactly one block is malformed.
///
/// # Errors
///
/// Propagates I/O errors; clean EOF at a frame boundary is
/// [`ReadOutcome::Eof`], not an error.
pub fn read_request<R: Read>(r: &mut R, block_size: u32) -> io::Result<ReadOutcome> {
    let mut header = [0u8; 21];
    // Distinguish clean EOF (no bytes) from a torn header.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(ReadOutcome::Eof),
            0 => {
                return Ok(ReadOutcome::Malformed(format!(
                    "connection closed mid-header ({filled}/21 bytes)"
                )))
            }
            n => filled += n,
        }
    }
    let op = header[0];
    let req_id = u64::from_le_bytes(header[1..9].try_into().unwrap());
    let lba = u64::from_le_bytes(header[9..17].try_into().unwrap());
    let len = u32::from_le_bytes(header[17..21].try_into().unwrap());
    match op {
        OP_GET | OP_FLUSH | OP_SESSION => {
            if len != 0 {
                return Ok(ReadOutcome::Malformed(format!(
                    "op {op} carries an unexpected {len}-byte payload"
                )));
            }
            Ok(ReadOutcome::Request(match op {
                OP_GET => Request::Get { req_id, lba },
                OP_FLUSH => Request::Flush { req_id },
                _ => Request::Session { token: lba },
            }))
        }
        OP_PUT => {
            if len != block_size || len > MAX_PAYLOAD {
                return Ok(ReadOutcome::Malformed(format!(
                    "PUT payload {len} B, device block is {block_size} B"
                )));
            }
            let mut data = vec![0u8; len as usize];
            r.read_exact(&mut data)?;
            Ok(ReadOutcome::Request(Request::Put { req_id, lba, data }))
        }
        other => Ok(ReadOutcome::Malformed(format!("unknown opcode {other}"))),
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub req_id: u64,
    /// [`STATUS_OK`] or [`STATUS_ERR`].
    pub status: u8,
    /// Block data for a successful `GET`; empty otherwise.
    pub payload: Vec<u8>,
}

impl Response {
    /// Whether the operation succeeded.
    pub fn ok(&self) -> bool {
        self.status == STATUS_OK
    }

    /// Whether the request was shed under overload and is safe to retry.
    pub fn busy(&self) -> bool {
        self.status == STATUS_BUSY
    }

    /// Whether the owning shard is quarantined (retrying cannot help).
    pub fn shard_failed(&self) -> bool {
        self.status == STATUS_SHARD_FAILED
    }

    /// Serializes the response frame.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut header = [0u8; 13];
        header[..8].copy_from_slice(&self.req_id.to_le_bytes());
        header[8] = self.status;
        header[9..13].copy_from_slice(&(self.payload.len() as u32).to_le_bytes());
        w.write_all(&header)?;
        if !self.payload.is_empty() {
            w.write_all(&self.payload)?;
        }
        Ok(())
    }

    /// Reads one response frame.
    ///
    /// # Errors
    ///
    /// I/O failure or an oversized length field.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Response> {
        let mut header = [0u8; 13];
        r.read_exact(&mut header)?;
        let req_id = u64::from_le_bytes(header[..8].try_into().unwrap());
        let status = header[8];
        let len = u32::from_le_bytes(header[9..13].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response payload {len} B exceeds protocol maximum"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Response {
            req_id,
            status,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(req: Request) {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        match read_request(&mut Cursor::new(buf), 512).unwrap() {
            ReadOutcome::Request(got) => assert_eq!(got, req),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn request_frames_round_trip() {
        round_trip(Request::Get { req_id: 7, lba: 42 });
        round_trip(Request::Put {
            req_id: u64::MAX,
            lba: 1 << 40,
            data: vec![0xAB; 512],
        });
        round_trip(Request::Flush { req_id: 0 });
        round_trip(Request::Session { token: 0xDEAD_BEEF });
    }

    #[test]
    fn session_frame_with_payload_is_malformed() {
        let mut buf = [0u8; 22];
        buf[0] = OP_SESSION;
        buf[17..21].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            read_request(&mut Cursor::new(buf), 512).unwrap(),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn status_helpers_are_disjoint() {
        let mk = |status| Response {
            req_id: 1,
            status,
            payload: Vec::new(),
        };
        assert!(mk(STATUS_OK).ok());
        assert!(!mk(STATUS_OK).busy() && !mk(STATUS_OK).shard_failed());
        assert!(mk(STATUS_BUSY).busy() && !mk(STATUS_BUSY).ok());
        assert!(mk(STATUS_SHARD_FAILED).shard_failed());
        assert!(!mk(STATUS_ERR).ok() && !mk(STATUS_ERR).busy());
    }

    #[test]
    fn response_frames_round_trip() {
        for resp in [
            Response {
                req_id: 3,
                status: STATUS_OK,
                payload: vec![1, 2, 3],
            },
            Response {
                req_id: 9,
                status: STATUS_ERR,
                payload: Vec::new(),
            },
        ] {
            let mut buf = Vec::new();
            resp.write_to(&mut buf).unwrap();
            assert_eq!(Response::read_from(&mut Cursor::new(buf)).unwrap(), resp);
        }
    }

    #[test]
    fn clean_eof_is_not_malformed() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_request(&mut Cursor::new(empty), 512).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn torn_header_is_malformed() {
        let torn = [OP_GET, 1, 2, 3];
        assert!(matches!(
            read_request(&mut Cursor::new(torn), 512).unwrap(),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn wrong_put_size_and_bad_opcode_are_malformed() {
        let mut buf = Vec::new();
        Request::Put {
            req_id: 1,
            lba: 1,
            data: vec![0; 100],
        }
        .write_to(&mut buf)
        .unwrap();
        assert!(matches!(
            read_request(&mut Cursor::new(buf), 512).unwrap(),
            ReadOutcome::Malformed(_)
        ));
        let bad = {
            let mut h = [0u8; 21];
            h[0] = 99;
            h
        };
        assert!(matches!(
            read_request(&mut Cursor::new(bad), 512).unwrap(),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_magic() {
        let h = Hello {
            block_size: 4096,
            shards: 4,
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(Hello::read_from(&mut Cursor::new(buf)).unwrap(), h);
        let bad = vec![0u8; 12];
        assert!(Hello::read_from(&mut Cursor::new(bad)).is_err());
    }
}
