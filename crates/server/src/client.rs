//! Clients for the block-cache protocol.
//!
//! [`BlockClient`] is the simple synchronous client: one outstanding
//! request, responses arrive in order. [`BlockClient::into_split`] turns it
//! into a pipelined pair — a [`SendHalf`] and a [`RecvHalf`] that two
//! threads drive independently, which is what the open-loop load generator
//! needs (it must keep issuing requests at the arrival rate regardless of
//! how far behind the responses are).

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration as StdDuration;

use crate::protocol::{Hello, Request, Response};

/// Default socket read/write timeout for [`BlockClient::connect`]: long
/// enough for any healthy round trip (including a whole-device `FLUSH`
/// barrier), short enough that a dead server cannot hang the client
/// forever.
pub const DEFAULT_IO_TIMEOUT: StdDuration = StdDuration::from_secs(30);

/// A synchronous protocol client.
#[derive(Debug)]
pub struct BlockClient {
    send: SendHalf,
    recv: RecvHalf,
    hello: Hello,
}

impl BlockClient {
    /// Connects and reads the server hello, with
    /// [`DEFAULT_IO_TIMEOUT`] on both socket directions — the hello read
    /// included — so no path can block forever on a stalled server.
    ///
    /// # Errors
    ///
    /// Connection failure or a malformed hello.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<BlockClient> {
        Self::connect_configured(addr, Some(DEFAULT_IO_TIMEOUT), Some(DEFAULT_IO_TIMEOUT))
    }

    /// [`BlockClient::connect`] with explicit socket timeouts (`None`
    /// blocks forever, the pre-hardening behaviour).
    ///
    /// # Errors
    ///
    /// Connection failure or a malformed hello.
    pub fn connect_configured<A: ToSocketAddrs>(
        addr: A,
        read_timeout: Option<StdDuration>,
        write_timeout: Option<StdDuration>,
    ) -> io::Result<BlockClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(read_timeout)?;
        stream.set_write_timeout(write_timeout)?;
        let write_stream = stream.try_clone()?;
        let mut reader = BufReader::with_capacity(64 * 1024, stream);
        let hello = Hello::read_from(&mut reader)?;
        Ok(BlockClient {
            send: SendHalf {
                writer: BufWriter::with_capacity(64 * 1024, write_stream),
                next_id: 0,
                block_size: hello.block_size as usize,
            },
            recv: RecvHalf { reader },
            hello,
        })
    }

    /// The server's hello (block size, shard count).
    pub fn hello(&self) -> Hello {
        self.hello
    }

    /// Device block size in bytes.
    pub fn block_size(&self) -> usize {
        self.hello.block_size as usize
    }

    /// Reads one block, waiting for the response.
    ///
    /// # Errors
    ///
    /// I/O failure; a `STATUS_ERR` response is returned, not an error.
    pub fn get(&mut self, lba: u64) -> io::Result<Response> {
        let id = self.send.send_get(lba)?;
        self.send.flush_io()?;
        let resp = self.recv.recv()?;
        debug_assert_eq!(resp.req_id, id);
        Ok(resp)
    }

    /// Writes one block, waiting for the acknowledgement.
    ///
    /// # Errors
    ///
    /// I/O failure; a `STATUS_ERR` response is returned, not an error.
    pub fn put(&mut self, lba: u64, data: &[u8]) -> io::Result<Response> {
        let id = self.send.send_put(lba, data)?;
        self.send.flush_io()?;
        let resp = self.recv.recv()?;
        debug_assert_eq!(resp.req_id, id);
        Ok(resp)
    }

    /// Runs a whole-device durability barrier, waiting for completion.
    ///
    /// # Errors
    ///
    /// I/O failure; a `STATUS_ERR` response is returned, not an error.
    pub fn flush(&mut self) -> io::Result<Response> {
        let id = self.send.send_flush()?;
        self.send.flush_io()?;
        let resp = self.recv.recv()?;
        debug_assert_eq!(resp.req_id, id);
        Ok(resp)
    }

    /// Splits into independently driven send/receive halves for
    /// pipelining.
    pub fn into_split(self) -> (SendHalf, RecvHalf) {
        (self.send, self.recv)
    }
}

/// The write side of a pipelined connection. Request ids are sequential
/// from 0, so the caller can index per-request bookkeeping by id.
#[derive(Debug)]
pub struct SendHalf {
    writer: BufWriter<TcpStream>,
    next_id: u64,
    block_size: usize,
}

impl SendHalf {
    /// Enqueues a `GET`; returns its request id. Buffered — call
    /// [`SendHalf::flush_io`] to push bytes to the wire.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn send_get(&mut self, lba: u64) -> io::Result<u64> {
        let req_id = self.next_id;
        self.next_id += 1;
        Request::Get { req_id, lba }.write_to(&mut self.writer)?;
        Ok(req_id)
    }

    /// Enqueues a `PUT`; returns its request id.
    ///
    /// # Errors
    ///
    /// I/O failure, or a payload that is not exactly one block.
    pub fn send_put(&mut self, lba: u64, data: &[u8]) -> io::Result<u64> {
        if data.len() != self.block_size {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "payload is {} B, device block is {} B",
                    data.len(),
                    self.block_size
                ),
            ));
        }
        let req_id = self.next_id;
        self.next_id += 1;
        Request::Put {
            req_id,
            lba,
            data: data.to_vec(),
        }
        .write_to(&mut self.writer)?;
        Ok(req_id)
    }

    /// Enqueues a `FLUSH`; returns its request id.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn send_flush(&mut self) -> io::Result<u64> {
        let req_id = self.next_id;
        self.next_id += 1;
        Request::Flush { req_id }.write_to(&mut self.writer)?;
        Ok(req_id)
    }

    /// Flushes buffered request bytes to the socket.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn flush_io(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Ids handed out so far (== requests enqueued).
    pub fn sent(&self) -> u64 {
        self.next_id
    }

    /// Flushes and half-closes the connection (no more requests). The
    /// server drains what was sent, writes every response, and closes —
    /// so the paired [`RecvHalf`] sees the remaining responses followed
    /// by a clean error, giving pipelined drivers a race-free way to end
    /// a stream without out-of-band "sender is done" signalling.
    ///
    /// # Errors
    ///
    /// I/O failure.
    pub fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(Shutdown::Write)
    }
}

/// The read side of a pipelined connection.
#[derive(Debug)]
pub struct RecvHalf {
    reader: BufReader<TcpStream>,
}

impl RecvHalf {
    /// Blocks for the next response frame.
    ///
    /// # Errors
    ///
    /// I/O failure (including the server closing the connection).
    pub fn recv(&mut self) -> io::Result<Response> {
        Response::read_from(&mut self.reader)
    }
}
