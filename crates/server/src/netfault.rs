//! Deterministic network fault injection for the serve path.
//!
//! The media layer already has a seeded fault injector
//! (`flashsim::fault::FaultInjector`); this module is its network
//! counterpart. A [`FaultyTransport`] wraps one direction of a TCP stream
//! and, on each `read`/`write` call, consults a pure hash of the plan seed
//! and a per-transport operation counter to decide whether to inject one
//! of four fault classes:
//!
//! * **Reset** — the connection is severed (`ECONNRESET` to the caller,
//!   the underlying socket is shut down so the peer sees it too) and the
//!   transport is poisoned: every further operation fails.
//! * **Partial write** — a prefix of the buffer reaches the wire and then
//!   the connection resets, leaving a torn frame for the peer to choke on
//!   (the server counts it as a protocol error and closes).
//! * **Stall** — the call sleeps for the plan's stall duration before
//!   proceeding, long enough to trip peer read timeouts when configured to.
//! * **Delay** — a short sleep modelling delayed delivery; the call then
//!   succeeds normally.
//!
//! Like the media injector, the decision function is a pure hash of
//! `(seed, op counter)`, so a given seed yields the same fault *sequence*
//! on every run; which frame a given decision lands on follows the
//! caller's sequence of transport operations. The injector is strictly
//! opt-in: [`FaultyTransport::passthrough`] takes a single `Option` branch
//! per call, draws no hashes and sleeps never — the off path adds no
//! behaviour to a clean server or client.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration as StdDuration;

/// Per-operation network-fault probabilities in parts per million, plus
/// the seed making injection deterministic and the two sleep durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// Seed for the per-operation fault hash.
    pub seed: u64,
    /// Connection reset: the op fails with `ConnectionReset` and the
    /// transport is poisoned.
    pub reset_ppm: u32,
    /// Partial write then reset (writes only): a prefix reaches the wire,
    /// tearing the frame for the peer.
    pub partial_ppm: u32,
    /// Stall: sleep [`NetFaultPlan::stall`] before the op proceeds.
    pub stall_ppm: u32,
    /// Delayed delivery: sleep [`NetFaultPlan::delay`] before the op.
    pub delay_ppm: u32,
    /// Stall duration (long: meant to trip peer timeouts when they are
    /// configured tighter than this).
    pub stall: StdDuration,
    /// Delay duration (short: jitter, not failure).
    pub delay: StdDuration,
}

impl NetFaultPlan {
    /// A plan injecting every class at the same base rate with short,
    /// test-friendly sleeps — the single-knob form used by
    /// `perf_serve --net-faults` and the torture tests. Resets fire at the
    /// base rate; the rarer classes scale down from it.
    pub fn uniform(seed: u64, ppm: u32) -> Self {
        NetFaultPlan {
            seed,
            reset_ppm: ppm,
            partial_ppm: ppm / 2,
            stall_ppm: ppm / 4,
            delay_ppm: ppm,
            stall: StdDuration::from_millis(20),
            delay: StdDuration::from_micros(500),
        }
    }

    /// Decorrelates the plan seed for one connection/direction so every
    /// transport draws an independent fault sequence (`salt` encodes the
    /// connection id and direction; reconnect attempts must use fresh
    /// salts or a deterministic reset would refire forever).
    pub fn decorrelated(mut self, salt: u64) -> Self {
        self.seed = mix(self.seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        self
    }
}

/// Cumulative injected-fault counts for one transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetFaultCounters {
    /// Connection resets injected.
    pub resets: u64,
    /// Partial writes (torn frames) injected.
    pub partial_writes: u64,
    /// Stalls injected.
    pub stalls: u64,
    /// Short delays injected.
    pub delays: u64,
}

impl NetFaultCounters {
    /// Total faults injected, every class.
    pub fn total(&self) -> u64 {
        self.resets + self.partial_writes + self.stalls + self.delays
    }

    /// Field-wise sum (aggregating per-transport counters).
    pub fn merged(&self, o: &NetFaultCounters) -> NetFaultCounters {
        NetFaultCounters {
            resets: self.resets + o.resets,
            partial_writes: self.partial_writes + o.partial_writes,
            stalls: self.stalls + o.stalls,
            delays: self.delays + o.delays,
        }
    }
}

/// What the injector decided about one transport operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetFault {
    None,
    Reset,
    Partial,
    Stall,
    Delay,
}

/// SplitMix64 finalizer — same full-avalanche hash the media injector
/// uses, so the two fault layers share one determinism idiom.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded decision state for one transport direction.
#[derive(Debug, Clone)]
struct Injector {
    plan: NetFaultPlan,
    /// Operations that consulted the hash so far (determinism anchor).
    ops: u64,
}

impl Injector {
    /// One deterministic draw in `[0, 1_000_000)`, advancing the counter.
    fn draw(&mut self) -> u32 {
        let op = self.ops;
        self.ops += 1;
        (mix(self.plan.seed ^ op.wrapping_mul(0xA24B_AED4_963E_E407)) % 1_000_000) as u32
    }

    /// Decides the fate of one operation. `writes` enables the
    /// partial-write class (meaningless for reads).
    fn decide(&mut self, writes: bool) -> NetFault {
        let p = self.plan;
        let partial_ppm = if writes { p.partial_ppm } else { 0 };
        let draw = self.draw();
        if draw < p.reset_ppm {
            NetFault::Reset
        } else if draw < p.reset_ppm + partial_ppm {
            NetFault::Partial
        } else if draw < p.reset_ppm + partial_ppm + p.stall_ppm {
            NetFault::Stall
        } else if draw < p.reset_ppm + partial_ppm + p.stall_ppm + p.delay_ppm {
            NetFault::Delay
        } else {
            NetFault::None
        }
    }
}

/// One direction of a TCP stream with optional seeded fault injection.
///
/// Implements `Read` and `Write` so it slots under the protocol codec
/// (optionally behind a `BufReader`/`BufWriter`). With no plan installed
/// every call is a single `Option` check around the inner socket call.
#[derive(Debug)]
pub struct FaultyTransport {
    inner: TcpStream,
    injector: Option<Box<InjectorState>>,
}

#[derive(Debug)]
struct InjectorState {
    injector: Injector,
    counters: NetFaultCounters,
    /// A reset fired: every further operation fails.
    poisoned: bool,
}

impl FaultyTransport {
    /// A transport injecting faults per `plan`.
    pub fn new(inner: TcpStream, plan: NetFaultPlan) -> Self {
        FaultyTransport {
            inner,
            injector: Some(Box::new(InjectorState {
                injector: Injector { plan, ops: 0 },
                counters: NetFaultCounters::default(),
                poisoned: false,
            })),
        }
    }

    /// A fault-free transport: the zero-cost off path.
    pub fn passthrough(inner: TcpStream) -> Self {
        FaultyTransport {
            inner,
            injector: None,
        }
    }

    /// Wraps per `plan` when one is given, else passthrough.
    pub fn maybe(inner: TcpStream, plan: Option<NetFaultPlan>) -> Self {
        match plan {
            Some(p) => FaultyTransport::new(inner, p),
            None => FaultyTransport::passthrough(inner),
        }
    }

    /// Faults injected so far on this transport.
    pub fn counters(&self) -> NetFaultCounters {
        self.injector
            .as_ref()
            .map_or(NetFaultCounters::default(), |s| s.counters)
    }

    /// The wrapped socket (timeout configuration, shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.inner
    }

    fn reset(&mut self) -> io::Error {
        // Sever the real connection so the peer observes the fault too,
        // then poison this side.
        let _ = self.inner.shutdown(Shutdown::Both);
        if let Some(s) = self.injector.as_mut() {
            s.poisoned = true;
        }
        io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
    }
}

impl Read for FaultyTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let Some(state) = self.injector.as_mut() else {
            return self.inner.read(buf);
        };
        if state.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "transport poisoned by injected reset",
            ));
        }
        match state.injector.decide(false) {
            NetFault::None => self.inner.read(buf),
            NetFault::Reset => {
                self.injector.as_mut().unwrap().counters.resets += 1;
                Err(self.reset())
            }
            NetFault::Stall => {
                state.counters.stalls += 1;
                let stall = state.injector.plan.stall;
                std::thread::sleep(stall);
                self.inner.read(buf)
            }
            NetFault::Delay | NetFault::Partial => {
                state.counters.delays += 1;
                let delay = state.injector.plan.delay;
                std::thread::sleep(delay);
                self.inner.read(buf)
            }
        }
    }
}

impl Write for FaultyTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(state) = self.injector.as_mut() else {
            return self.inner.write(buf);
        };
        if state.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "transport poisoned by injected reset",
            ));
        }
        match state.injector.decide(true) {
            NetFault::None => self.inner.write(buf),
            NetFault::Reset => {
                self.injector.as_mut().unwrap().counters.resets += 1;
                Err(self.reset())
            }
            NetFault::Partial => {
                // Push a strict prefix onto the wire, then sever: the peer
                // decodes a torn frame.
                state.counters.partial_writes += 1;
                let n = (buf.len() / 2).max(1).min(buf.len());
                let _ = self.inner.write(&buf[..n]);
                let _ = self.inner.flush();
                Err(self.reset())
            }
            NetFault::Stall => {
                state.counters.stalls += 1;
                let stall = state.injector.plan.stall;
                std::thread::sleep(stall);
                self.inner.write(buf)
            }
            NetFault::Delay => {
                state.counters.delays += 1;
                let delay = state.injector.plan.delay;
                std::thread::sleep(delay);
                self.inner.write(buf)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequence(plan: NetFaultPlan, writes: bool, n: usize) -> Vec<NetFault> {
        let mut inj = Injector { plan, ops: 0 };
        (0..n).map(|_| inj.decide(writes)).collect()
    }

    #[test]
    fn decision_sequence_is_seed_deterministic() {
        let plan = NetFaultPlan::uniform(42, 200_000);
        assert_eq!(sequence(plan, true, 500), sequence(plan, true, 500));
        let other = NetFaultPlan::uniform(43, 200_000);
        assert_ne!(
            sequence(plan, true, 500),
            sequence(other, true, 500),
            "different seeds must draw different fault sequences"
        );
    }

    #[test]
    fn rates_are_roughly_honoured() {
        // 30% resets over 10k draws: expect well over zero and under half.
        let plan = NetFaultPlan {
            seed: 7,
            reset_ppm: 300_000,
            partial_ppm: 0,
            stall_ppm: 0,
            delay_ppm: 0,
            stall: StdDuration::ZERO,
            delay: StdDuration::ZERO,
        };
        let resets = sequence(plan, true, 10_000)
            .iter()
            .filter(|f| **f == NetFault::Reset)
            .count();
        assert!(
            (2_000..4_000).contains(&resets),
            "30% nominal, got {resets}/10000"
        );
    }

    #[test]
    fn reads_never_draw_partial_writes() {
        let plan = NetFaultPlan {
            seed: 9,
            reset_ppm: 0,
            partial_ppm: 1_000_000,
            stall_ppm: 0,
            delay_ppm: 0,
            stall: StdDuration::ZERO,
            delay: StdDuration::ZERO,
        };
        assert!(sequence(plan, false, 200)
            .iter()
            .all(|f| *f == NetFault::None));
        assert!(sequence(plan, true, 200)
            .iter()
            .all(|f| *f == NetFault::Partial));
    }

    #[test]
    fn decorrelated_seeds_differ_per_salt() {
        let plan = NetFaultPlan::uniform(1, 100_000);
        let a = plan.decorrelated(1);
        let b = plan.decorrelated(2);
        assert_ne!(a.seed, b.seed);
        // Deterministic: same salt, same derived seed.
        assert_eq!(a.seed, plan.decorrelated(1).seed);
    }

    #[test]
    fn transport_reset_poisons_and_severs() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = Vec::new();
            // Drain whatever arrives until the peer severs.
            let _ = s.read_to_end(&mut buf);
            buf
        });
        let stream = TcpStream::connect(addr).unwrap();
        let plan = NetFaultPlan {
            seed: 3,
            reset_ppm: 1_000_000,
            partial_ppm: 0,
            stall_ppm: 0,
            delay_ppm: 0,
            stall: StdDuration::ZERO,
            delay: StdDuration::ZERO,
        };
        let mut t = FaultyTransport::new(stream, plan);
        let err = t.write(b"hello").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Poisoned thereafter, no further draws needed.
        assert_eq!(
            t.write(b"again").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(t.counters().resets, 1);
        let seen = join.join().unwrap();
        assert!(seen.is_empty(), "reset-before-write leaked bytes: {seen:?}");
    }

    #[test]
    fn passthrough_round_trips_and_counts_nothing() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            let mut t = FaultyTransport::passthrough(s);
            let mut buf = [0u8; 5];
            t.read_exact(&mut buf).unwrap();
            t.write_all(&buf).unwrap();
        });
        let mut t = FaultyTransport::passthrough(TcpStream::connect(addr).unwrap());
        t.write_all(b"abcde").unwrap();
        let mut echo = [0u8; 5];
        t.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"abcde");
        assert_eq!(t.counters(), NetFaultCounters::default());
        join.join().unwrap();
    }
}
