//! A counting semaphore bounding concurrent connections.
//!
//! The standard library has no semaphore; this is the classic
//! mutex-plus-condvar construction with an RAII permit, shared through an
//! `Arc` so permits can be released from whichever thread finishes the
//! connection. Acquisition blocks — under connection pressure the accept
//! loop waits instead of spawning unboundedly, which is the back-pressure
//! behaviour an open-loop load generator measures as queueing delay.

use std::sync::{Arc, Condvar, Mutex};

/// A counting semaphore with blocking acquisition.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<usize>,
    available: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initially available.
    pub fn new(permits: usize) -> Arc<Semaphore> {
        Arc::new(Semaphore {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        })
    }

    /// Blocks until a permit is available and takes it.
    pub fn acquire(self: &Arc<Self>) -> Permit {
        let mut n = self.permits.lock().expect("semaphore mutex poisoned");
        while *n == 0 {
            n = self.available.wait(n).expect("semaphore mutex poisoned");
        }
        *n -= 1;
        Permit {
            sem: Arc::clone(self),
        }
    }

    /// Blocks up to `timeout` for a permit; `None` if none freed in time.
    /// Lets a waiter (the accept loop watching its stop flag) poll
    /// without a busy sleep: the condvar wakes it the moment a permit is
    /// released.
    pub fn acquire_timeout(self: &Arc<Self>, timeout: std::time::Duration) -> Option<Permit> {
        let deadline = std::time::Instant::now() + timeout;
        let mut n = self.permits.lock().expect("semaphore mutex poisoned");
        while *n == 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, result) = self
                .available
                .wait_timeout(n, deadline - now)
                .expect("semaphore mutex poisoned");
            n = guard;
            if result.timed_out() && *n == 0 {
                return None;
            }
        }
        *n -= 1;
        Some(Permit {
            sem: Arc::clone(self),
        })
    }

    /// Takes a permit only if one is free right now.
    pub fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut n = self.permits.lock().expect("semaphore mutex poisoned");
        if *n == 0 {
            return None;
        }
        *n -= 1;
        Some(Permit {
            sem: Arc::clone(self),
        })
    }

    /// Permits currently available (diagnostics only — racy by nature).
    pub fn available(&self) -> usize {
        *self.permits.lock().expect("semaphore mutex poisoned")
    }

    fn release(&self) {
        let mut n = self.permits.lock().expect("semaphore mutex poisoned");
        *n += 1;
        self.available.notify_one();
    }
}

/// An acquired permit; dropping it releases the slot.
#[derive(Debug)]
pub struct Permit {
    sem: Arc<Semaphore>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.sem.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn bounds_concurrency() {
        let sem = Semaphore::new(2);
        let a = sem.acquire();
        let _b = sem.acquire();
        assert!(sem.try_acquire().is_none(), "both permits taken");
        drop(a);
        assert!(sem.try_acquire().is_some(), "released permit reusable");
    }

    #[test]
    fn acquire_timeout_expires_and_succeeds() {
        let sem = Semaphore::new(1);
        let held = sem.acquire();
        assert!(
            sem.acquire_timeout(Duration::from_millis(10)).is_none(),
            "no permit frees within the timeout"
        );
        drop(held);
        assert!(
            sem.acquire_timeout(Duration::from_millis(10)).is_some(),
            "a free permit is taken immediately"
        );
    }

    #[test]
    fn blocked_acquirer_wakes_on_release() {
        let sem = Semaphore::new(1);
        let held = sem.acquire();
        let sem2 = Arc::clone(&sem);
        let waiter = thread::spawn(move || {
            let _p = sem2.acquire();
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "acquire must block while held");
        drop(held);
        waiter.join().unwrap();
        assert_eq!(sem.available(), 1);
    }
}
