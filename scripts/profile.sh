#!/usr/bin/env sh
# Wall-time profile of the replay pipeline, as folded stacks.
#
# Builds the release harness, runs a batched replay with the
# self-instrumented profiler enabled, and leaves a folded-stacks file
# that any flamegraph renderer accepts:
#
#   ./scripts/profile.sh                     # 1M events, batch 1024
#   EVENTS=300000 BATCH=64 ./scripts/profile.sh
#   flamegraph.pl target/profile.folded > flame.svg   # if you have it
#
# The folds are coarse by design — one per pipeline stage
# (workload generation, then each system's replay) — because external
# profilers (perf, gprofng) are unavailable in the build sandbox. For
# finer attribution, the harness composes with the usual suspects when
# you do have them:
#
#   perf record -g -- target/release/perf_replay --events 1000000 --batch 1024
#   perf script | stackcollapse-perf.pl > out.folded
#
# Interpreting the folds: `perf_replay;workload_gen` is trace synthesis
# (host-only, excluded from the measured region);
# `perf_replay;replay;<system>` is that system's full replay wall time.
# Compare a `--batch 1` run against `--batch 1024` to see the batching
# win; compare systems against each other to see where simulated work
# (GC, merges, metadata persistence) dominates host work.

set -eu

EVENTS="${EVENTS:-1000000}"
BATCH="${BATCH:-1024}"
OUT="${OUT:-target/profile.folded}"

cargo build --release -p flashtier-bench

./target/release/perf_replay \
    --events "$EVENTS" \
    --batch "$BATCH" \
    --profile "$OUT"

echo "folded stacks written to $OUT:" >&2
cat "$OUT" >&2
