//! `flashtier` — the trace-replay command line.
//!
//! The paper's evaluation ran through "a trace-replay framework invokable
//! from user-space" (§5); this binary is that framework for the simulated
//! stack. It generates calibrated synthetic traces, characterizes any
//! trace in the JSON-lines format, and replays traces against every system
//! configuration the evaluation compares.
//!
//! ```text
//! flashtier gen-trace homes --scale 100 --out homes.jsonl
//! flashtier stats homes.jsonl
//! flashtier replay homes.jsonl --system flashtier-wb --cache-mb 64
//! flashtier replay homes.jsonl --system native-wb --cache-mb 64
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use flashtier::cachemgr::{
    replay, CacheSystem, FlashTierWb, FlashTierWt, NativeCache, NativeConsistency, NativeMode,
};
use flashtier::disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier::flashsim::{DataMode, FlashConfig};
use flashtier::ftl::{HybridFtl, SsdConfig};
use flashtier::ssc::{ConsistencyMode, Ssc, SscConfig};
use flashtier::trace::{generate, Trace, TraceStats, WorkloadSpec};

const USAGE: &str = "\
flashtier — FlashTier trace-replay framework

USAGE:
    flashtier gen-trace <homes|mail|usr|proj> [--scale <f>] --out <file>
    flashtier import-msr <trace.csv> --out <file> [--max-events <n>]
    flashtier stats <trace.jsonl>
    flashtier replay <trace.jsonl> --system <kind> [options]

REPLAY OPTIONS:
    --system <kind>       flashtier-wt | flashtier-wb | native-wt | native-wb
    --cache-mb <n>        cache size in MB (default: 25% of the trace's unique blocks)
    --ssc-r               use the SSC-R (SE-Merge, 20% log) device
    --consistency <mode>  none | dirty | full   (default: full)
    --warmup <frac>       untimed warm-up fraction of the trace (default 0.15)
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen-trace") => gen_trace(&args),
        Some("import-msr") => import_msr(&args),
        Some("stats") => stats(&args),
        Some("replay") => replay_cmd(&args),
        Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command '{other}'")),
    }
}

fn gen_trace(args: &[String]) -> ExitCode {
    let Some(name) = args.get(1) else {
        return fail("gen-trace needs a workload name");
    };
    let spec = match name.as_str() {
        "homes" => WorkloadSpec::homes(),
        "mail" => WorkloadSpec::mail(),
        "usr" => WorkloadSpec::usr(),
        "proj" => WorkloadSpec::proj(),
        other => return fail(&format!("unknown workload '{other}'")),
    };
    let scale: f64 = arg_value(args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(500.0);
    let Some(out) = arg_value(args, "--out") else {
        return fail("gen-trace needs --out <file>");
    };
    let spec = spec.scaled(scale);
    eprintln!(
        "generating {}: {} ops over {} blocks (scale 1/{scale})",
        spec.name, spec.total_ops, spec.range_blocks
    );
    let trace = generate(&spec);
    let file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot create {out}: {e}")),
    };
    if let Err(e) = trace.to_jsonl(BufWriter::new(file)) {
        return fail(&format!("write failed: {e}"));
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn import_msr(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return fail("import-msr needs a CSV file");
    };
    let Some(out) = arg_value(args, "--out") else {
        return fail("import-msr needs --out <file>");
    };
    let max_events: usize = arg_value(args, "--max-events")
        .and_then(|s| s.parse().ok())
        .unwrap_or(usize::MAX);
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot open {path}: {e}")),
    };
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("msr")
        .to_string();
    let (trace, skipped) =
        match flashtier::trace::from_msr_csv(BufReader::new(file), &name, max_events) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot parse {path}: {e}")),
        };
    eprintln!("imported {trace} ({skipped} unparsable lines skipped)");
    let out_file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot create {out}: {e}")),
    };
    if let Err(e) = trace.to_jsonl(BufWriter::new(out_file)) {
        return fail(&format!("write failed: {e}"));
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Trace::from_jsonl(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn stats(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return fail("stats needs a trace file");
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let s = TraceStats::compute(&trace);
    println!("{trace}");
    println!("  unique blocks:   {}", s.unique_blocks);
    println!("  write fraction:  {:.1}%", s.write_fraction() * 100.0);
    println!(
        "  hot-25% share:   {:.1}% of accesses",
        s.hot_access_share(0.25) * 100.0
    );
    let (hot, all) = s.writes_per_block(0.25);
    println!("  writes/block:    hot {:.2} vs all {:.2}", hot, all);
    println!(
        "  cache for top-25%: {:.1} MB",
        s.top_blocks(0.25).len() as f64 * 4096.0 / (1024.0 * 1024.0)
    );
    ExitCode::SUCCESS
}

fn replay_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1) else {
        return fail("replay needs a trace file");
    };
    let trace = match load_trace(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let Some(kind) = arg_value(args, "--system") else {
        return fail("replay needs --system");
    };
    let tstats = TraceStats::compute(&trace);
    let default_cache_blocks = (tstats.unique_blocks / 4).max(1024);
    let cache_blocks = arg_value(args, "--cache-mb")
        .and_then(|s| s.parse::<u64>().ok())
        .map(|mb| mb * 256) // 4 KB blocks per MB
        .unwrap_or(default_cache_blocks);
    let consistency = match arg_value(args, "--consistency").as_deref() {
        None | Some("full") => ConsistencyMode::CleanAndDirty,
        Some("dirty") => ConsistencyMode::DirtyOnly,
        Some("none") => ConsistencyMode::None,
        Some(other) => return fail(&format!("unknown consistency '{other}'")),
    };
    let warmup: f64 = arg_value(args, "--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let ssc_r = args.iter().any(|a| a == "--ssc-r");

    let raw_flash =
        FlashConfig::with_capacity_bytes((cache_blocks * 4096) as f64 as u64 * 100 / 84);
    let disk_config = DiskConfig {
        capacity_blocks: trace.range_blocks.max(1),
        ..DiskConfig::paper_default()
    };
    let disk = Disk::new(disk_config, DiskDataMode::Discard);
    let ssc_config = if ssc_r {
        SscConfig::ssc_r(raw_flash)
    } else {
        SscConfig::ssc(raw_flash)
    }
    .with_consistency(consistency)
    .with_data_mode(DataMode::Discard);

    let mut system: Box<dyn CacheSystem> = match kind.as_str() {
        "flashtier-wt" => Box::new(FlashTierWt::new(Ssc::new(ssc_config), disk)),
        "flashtier-wb" => Box::new(FlashTierWb::new(Ssc::new(ssc_config), disk)),
        "native-wt" | "native-wb" => {
            let ssd = HybridFtl::new(SsdConfig::paper_default(raw_flash), DataMode::Discard);
            let mode = if kind == "native-wb" {
                NativeMode::WriteBack
            } else {
                NativeMode::WriteThrough
            };
            let durability = match (mode, consistency) {
                (NativeMode::WriteBack, ConsistencyMode::None) => NativeConsistency::None,
                (NativeMode::WriteBack, _) => NativeConsistency::Durable,
                _ => NativeConsistency::None,
            };
            Box::new(NativeCache::new(ssd, disk, mode, durability))
        }
        other => return fail(&format!("unknown system '{other}'")),
    };

    eprintln!(
        "replaying {} against {} (cache {} blocks, warmup {:.0}%)",
        trace.name,
        system.name(),
        cache_blocks,
        warmup * 100.0
    );
    if let Err(e) = replay(system.as_mut(), trace.prefix(warmup)) {
        return fail(&format!("warmup failed: {e}"));
    }
    let result = match replay(system.as_mut(), trace.suffix(warmup)) {
        Ok(r) => r,
        Err(e) => return fail(&format!("replay failed: {e}")),
    };
    println!("system:          {}", system.name());
    println!("ops replayed:    {}", result.ops);
    println!("simulated time:  {}", result.sim_time);
    println!("throughput:      {:.0} IOPS", result.iops());
    println!("mean response:   {:.1} us", result.response_us.mean());
    println!(
        "p99-ish max:     {:.0} us",
        result.response_us.max().unwrap_or(0.0)
    );
    println!(
        "read miss rate:  {:.1}%",
        result.counters.miss_rate() * 100.0
    );
    println!("writebacks:      {}", result.counters.writebacks);
    println!(
        "host metadata:   {:.2} MB, device metadata: {:.2} MB",
        system.host_memory().modeled_bytes as f64 / (1 << 20) as f64,
        system.device_memory().modeled_bytes as f64 / (1 << 20) as f64
    );
    ExitCode::SUCCESS
}
