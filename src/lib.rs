//! FlashTier umbrella crate: re-exports every workspace component.
//!
//! See the individual crates for detail; this crate exists so examples and
//! integration tests can use one coherent `flashtier::` namespace.

pub use cachemgr;
pub use disksim;
pub use flashsim;
pub use flashtier_core as ssc;
pub use ftl;
pub use simkit;
pub use sparsemap;
pub use trace;
