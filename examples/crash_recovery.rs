//! Crash-recovery walkthrough: why a durable cache matters.
//!
//! §2: "filling a 100 GB cache from a 500 IOPS disk system takes over 14
//! hours. Thus, caching data persistently across system restarts can
//! greatly improve cache effectiveness." This example measures exactly
//! that trade on a scaled-down system:
//!
//! 1. warm a write-back cache,
//! 2. crash it,
//! 3. recover (milliseconds), verify every dirty block survived,
//! 4. compare against a cache that must be reset and re-warmed from disk.
//!
//! Run with: `cargo run --release --example crash_recovery`

use flashtier::cachemgr::{CacheSystem, FlashTierWb};
use flashtier::disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier::flashsim::{DataMode, FlashConfig};
use flashtier::simkit::SimRng;
use flashtier::ssc::{ConsistencyMode, Ssc, SscConfig};

const VOLUME_BLOCKS: u64 = (1 << 30) / 4096;
const CACHE_BYTES: u64 = 64 << 20;
const WARM_OPS: u64 = 40_000;

fn main() {
    let ssc = Ssc::new(
        SscConfig::ssc(FlashConfig::with_capacity_bytes(CACHE_BYTES))
            .with_data_mode(DataMode::Store)
            .with_consistency(ConsistencyMode::CleanAndDirty),
    );
    let disk = Disk::new(
        DiskConfig {
            capacity_blocks: VOLUME_BLOCKS,
            ..DiskConfig::paper_default()
        },
        DiskDataMode::Store,
    );
    let mut system = FlashTierWb::new(ssc, disk);

    // Warm the cache: mixed reads and writes over hot extents sized well
    // within the cache (a cache only works when the working set fits).
    let mut rng = SimRng::seed_from(11);
    let mut dirty_written: Vec<(u64, Vec<u8>)> = Vec::new();
    for i in 0..WARM_OPS {
        let lba = rng.gen_range(160) * 64 + rng.gen_range(64);
        if rng.gen_bool(0.5) {
            let page = vec![(i % 251) as u8; 4096];
            system.write(lba, &page).unwrap();
            dirty_written.retain(|(l, _)| *l != lba);
            dirty_written.push((lba, page));
        } else {
            system.read(lba).unwrap();
        }
    }
    let cached_before = system.ssc().cached_pages();
    let dirty_before = system.dirty_blocks();
    println!("warmed: {cached_before} pages cached, {dirty_before} dirty");

    // Crash and recover.
    let recovery_time = system.crash_and_recover().unwrap();
    println!("power failure! recovered in {recovery_time} (simulated device time)");
    println!(
        "dirty table rebuilt from exists(): {} blocks",
        system.dirty_blocks()
    );
    assert_eq!(system.dirty_blocks(), dirty_before);

    // Every dirty block must read back with its newest contents.
    for (lba, page) in dirty_written.iter().rev().take(500) {
        let (data, _) = system.read(*lba).unwrap();
        assert_eq!(&data, page, "dirty block {lba} corrupted by the crash");
    }
    println!("all dirty data verified intact after recovery");

    // What a non-durable cache would pay instead: refetch everything.
    let disk_cfg = DiskConfig::paper_default();
    let refill_time = disk_cfg.random_cost() * cached_before;
    println!(
        "a cache without durability would re-warm {cached_before} blocks from disk: ~{refill_time}"
    );
    println!(
        "durable recovery is {:.0}x faster",
        refill_time.as_secs_f64() / recovery_time.as_secs_f64().max(1e-9)
    );
}
