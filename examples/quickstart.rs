//! Quickstart: the SSC interface in five minutes.
//!
//! Builds a solid-state cache, exercises the six interface operations
//! (`write-dirty`, `write-clean`, `read`, `evict`, `clean`, `exists`), and
//! shows the three consistency guarantees surviving a simulated crash.
//!
//! Run with: `cargo run --release --example quickstart`

use flashtier::flashsim::FlashConfig;
use flashtier::ssc::{Ssc, SscConfig, SscError};

fn main() {
    // A 64 MB SSC with the paper's SE-Util policy and full consistency.
    let config = SscConfig::ssc(FlashConfig::with_capacity_bytes(64 << 20));
    let mut ssc = Ssc::new(config);
    let page_size = ssc.page_size();
    println!(
        "SSC ready: {} pages of {} bytes",
        ssc.data_capacity_pages(),
        page_size
    );

    // --- write-clean + read -------------------------------------------
    // Cache manager fetched disk block 1_000_000 on a miss; cache it.
    let clean_data = vec![0xAA; page_size];
    let cost = ssc.write_clean(1_000_000, &clean_data).unwrap();
    println!("write-clean took {cost} of simulated device time");
    let (data, cost) = ssc.read(1_000_000).unwrap();
    assert_eq!(data, clean_data);
    println!("read hit took {cost}");

    // --- write-dirty: durable before returning -------------------------
    let dirty_data = vec![0xBB; page_size];
    ssc.write_dirty(2_000_000, &dirty_data).unwrap();

    // --- exists: find dirty blocks (used for write-back recovery) ------
    let (dirty, _) = ssc.exists(0, u64::MAX);
    assert_eq!(dirty, vec![2_000_000]);
    println!("exists() reports dirty blocks: {dirty:?}");

    // --- crash: guarantee 1 (dirty data survives) ----------------------
    ssc.crash();
    let recovery_time = ssc.recover().unwrap();
    println!("recovered from crash in {recovery_time}");
    let (data, _) = ssc.read(2_000_000).unwrap();
    assert_eq!(data, dirty_data, "guarantee 1: dirty data is durable");

    // --- clean: allow eviction of written-back data ---------------------
    ssc.clean(2_000_000).unwrap();
    let (dirty, _) = ssc.exists(0, u64::MAX);
    assert!(dirty.is_empty(), "cleaned blocks are no longer dirty");

    // --- evict: guarantee 3 (read-after-evict fails) --------------------
    ssc.evict(1_000_000).unwrap();
    match ssc.read(1_000_000) {
        Err(SscError::NotPresent(lba)) => {
            println!("guarantee 3: block {lba} is not-present after evict")
        }
        other => panic!("expected not-present, got {other:?}"),
    }

    // --- a misses is a normal signal, not a failure ---------------------
    assert!(matches!(ssc.read(42), Err(SscError::NotPresent(42))));
    println!("\ncounters: {:#?}", ssc.counters());
}
