//! A read-heavy scenario: flash-caching a web/file server's static content.
//!
//! Builds the full FlashTier stack — SSC + disk + write-through cache
//! manager — and serves a Zipf-skewed read workload over a large cold
//! volume, the §3.1 use case where "there is little benefit to caching
//! writes" and the cache "is not considered reliable" end-to-end.
//!
//! Prints the throughput and latency improvement over running bare disk.
//!
//! Run with: `cargo run --release --example web_static_cache`

use flashtier::cachemgr::{CacheSystem, FlashTierWt};
use flashtier::disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier::flashsim::{DataMode, FlashConfig};
use flashtier::simkit::{Duration, SimRng};
use flashtier::ssc::{ConsistencyMode, Ssc, SscConfig};
use flashtier::trace::ZipfSampler;

/// 1 GB volume of static objects, 4 KB blocks.
const VOLUME_BLOCKS: u64 = (1 << 30) / 4096;
/// 128 MB flash cache.
const CACHE_BYTES: u64 = 128 << 20;
/// Requests replayed untimed to warm the cache, then timed.
const WARMUP: u64 = 150_000;
const REQUESTS: u64 = 150_000;

fn zipf_requests(n: u64) -> Vec<u64> {
    // Objects are 64-block (256 KB) files; random-access requests (thumb-
    // nails, range GETs, index lookups) hit files with Zipf popularity.
    let files = VOLUME_BLOCKS / 64;
    let zipf = ZipfSampler::new(files, 0.99);
    let mut rng = SimRng::seed_from(2024);
    (0..n)
        .map(|_| {
            let file = flashtier::trace::zipf::scramble(zipf.sample(&mut rng)) % files;
            file * 64 + rng.gen_range(64)
        })
        .collect()
}

fn main() {
    let all = zipf_requests(WARMUP + REQUESTS);
    let (warm, requests) = all.split_at(WARMUP as usize);
    let disk_config = DiskConfig {
        capacity_blocks: VOLUME_BLOCKS,
        ..DiskConfig::paper_default()
    };

    // Baseline: every read goes to the disk.
    let mut bare_disk = Disk::new(disk_config, DiskDataMode::Discard);
    let mut bare_time = Duration::ZERO;
    for &lba in requests {
        bare_time += bare_disk.read(lba).unwrap().1;
    }

    // FlashTier write-through: SSC in front of the same disk; warm it with
    // the first half of the request stream, then measure.
    let ssc_config = SscConfig::ssc(FlashConfig::with_capacity_bytes(CACHE_BYTES))
        .with_data_mode(DataMode::Discard)
        .with_consistency(ConsistencyMode::CleanAndDirty);
    let mut cached = FlashTierWt::new(
        Ssc::new(ssc_config),
        Disk::new(disk_config, DiskDataMode::Discard),
    );
    for &lba in warm {
        cached.read(lba).unwrap();
    }
    let mut cached_time = Duration::ZERO;
    for &lba in requests {
        cached_time += cached.read(lba).unwrap().1;
    }

    let bare_iops = REQUESTS as f64 / bare_time.as_secs_f64();
    let cached_iops = REQUESTS as f64 / cached_time.as_secs_f64();
    let counters = cached.counters();
    println!("web static-content cache: {REQUESTS} requests over a 2 GB volume");
    println!("  bare disk:  {bare_iops:8.0} IOPS  ({bare_time} total)");
    println!("  flashtier:  {cached_iops:8.0} IOPS  ({cached_time} total)");
    println!("  speedup:    {:.1}x", cached_iops / bare_iops);
    println!(
        "  hit rate:   {:.1}% ({} hits / {} misses)",
        100.0 * counters.hit_rate(),
        counters.read_hits,
        counters.read_misses
    );
    println!(
        "  host metadata: {} bytes (write-through needs none)",
        cached.host_memory().modeled_bytes
    );
    assert!(
        cached_iops > bare_iops * 1.5,
        "the cache should help substantially"
    );
}
