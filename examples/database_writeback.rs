//! A write-heavy scenario: an OLTP-style database volume behind a
//! write-back flash cache.
//!
//! Random page updates hammer a hot working set; the write-back manager
//! absorbs them in the SSC with `write-dirty`, tracks them in its
//! dirty-block table, and destages contiguous runs to disk in the
//! background path — §3.1's "performs better with write-heavy workloads and
//! local disks" mode. Compares against write-through on the same device to
//! show why write-back exists.
//!
//! Run with: `cargo run --release --example database_writeback`

use flashtier::cachemgr::{CacheSystem, FlashTierWb, FlashTierWt};
use flashtier::disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier::flashsim::{DataMode, FlashConfig};
use flashtier::simkit::{Duration, SimRng};
use flashtier::ssc::{ConsistencyMode, Ssc, SscConfig};

/// 1 GB database volume.
const VOLUME_BLOCKS: u64 = (1 << 30) / 4096;
/// 96 MB cache.
const CACHE_BYTES: u64 = 96 << 20;
const TXNS: u64 = 60_000;

/// 80% updates / 20% point reads over 64-block-aligned hot extents
/// (B-tree leaves of the hot tables).
fn transactions() -> Vec<(u64, bool)> {
    let mut rng = SimRng::seed_from(77);
    let hot_extents = 128u64;
    (0..TXNS)
        .map(|_| {
            let extent = rng.gen_range(hot_extents);
            let lba = extent * 64 + rng.gen_range(64);
            (lba, rng.gen_bool(0.8))
        })
        .collect()
}

fn build_ssc() -> Ssc {
    Ssc::new(
        SscConfig::ssc(FlashConfig::with_capacity_bytes(CACHE_BYTES))
            .with_data_mode(DataMode::Discard)
            .with_consistency(ConsistencyMode::CleanAndDirty),
    )
}

fn disk() -> Disk {
    Disk::new(
        DiskConfig {
            capacity_blocks: VOLUME_BLOCKS,
            ..DiskConfig::paper_default()
        },
        DiskDataMode::Discard,
    )
}

fn run(system: &mut dyn CacheSystem, txns: &[(u64, bool)]) -> Duration {
    let page = vec![7u8; 4096];
    let mut total = Duration::ZERO;
    for &(lba, is_write) in txns {
        total += if is_write {
            system.write(lba, &page).unwrap()
        } else {
            system.read(lba).unwrap().1
        };
    }
    total
}

fn main() {
    let txns = transactions();

    let mut wt = FlashTierWt::new(build_ssc(), disk());
    let wt_time = run(&mut wt, &txns);

    let mut wb = FlashTierWb::new(build_ssc(), disk());
    let wb_time = run(&mut wb, &txns);

    let iops = |t: Duration| TXNS as f64 / t.as_secs_f64();
    println!("database volume, {TXNS} transactions (80% updates):");
    println!(
        "  write-through: {:8.0} IOPS (every update waits for the disk)",
        iops(wt_time)
    );
    println!(
        "  write-back:    {:8.0} IOPS (updates absorbed by the SSC)",
        iops(wb_time)
    );
    println!("  speedup:       {:.1}x", iops(wb_time) / iops(wt_time));
    println!(
        "  write-back destaged {} blocks to disk in {} contiguous-friendly writes",
        wb.counters().writebacks,
        wb.disk().counters().writes
    );
    println!(
        "  dirty blocks still cached: {} (threshold {})",
        wb.dirty_blocks(),
        wb.dirty_limit()
    );
    println!(
        "  host metadata: {} bytes for {} dirty blocks (14 B each)",
        wb.host_memory().modeled_bytes,
        wb.host_memory().entries
    );
    assert!(
        wb_time < wt_time,
        "write-back must beat write-through on this workload"
    );
}
