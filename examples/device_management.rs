//! Device-management walkthrough: background collection, wear leveling and
//! the extended `exists` interface.
//!
//! A storage appliance with idle periods can move garbage-collection work
//! off the request path (§5's background GC), keep wear spread tight, and
//! use `exists_meta` to base cleaning decisions on recency — the extension
//! §4.2.1 sketches.
//!
//! Run with: `cargo run --release --example device_management`

use flashtier::flashsim::{DataMode, FlashConfig};
use flashtier::simkit::SimRng;
use flashtier::ssc::{ConsistencyMode, Ssc, SscConfig};

fn main() {
    let mut ssc = Ssc::new(
        SscConfig::ssc(FlashConfig::with_capacity_bytes(64 << 20))
            .with_data_mode(DataMode::Discard)
            .with_consistency(ConsistencyMode::CleanAndDirty),
    );
    let page = vec![0u8; ssc.page_size()];
    let mut rng = SimRng::seed_from(3);

    // Busy phase: fill the device, then churn over aligned extents so
    // foreground eviction has to run.
    let span = ssc.data_capacity_pages();
    for lba in 0..span {
        ssc.write_clean(lba, &page).unwrap();
    }
    for _ in 0..span / 2 {
        let lba = (rng.gen_range(span / 64) * 64 + rng.gen_range(64)) % span;
        ssc.write_clean(lba, &page).unwrap();
    }
    println!(
        "after busy phase: {} free blocks, {} foreground evictions, wear diff {}",
        ssc.free_blocks(),
        ssc.counters().silent_evictions,
        ssc.wear().wear_difference()
    );

    // Measure a churn burst with no idle help (foreground GC in the path).
    let burst = |ssc: &mut Ssc, rng: &mut SimRng| -> (u64, u64) {
        let mut total = 0u64;
        let mut worst = 0u64;
        for _ in 0..256u64 {
            let lba = (rng.gen_range(span / 64) * 64 + rng.gen_range(64)) % span;
            let cost = ssc.write_clean(lba, &page).unwrap().as_micros();
            total += cost;
            worst = worst.max(cost);
        }
        (total / 256, worst)
    };
    let (busy_avg, busy_worst) = burst(&mut ssc, &mut rng);
    println!("burst without idle help: avg {busy_avg} us, worst {busy_worst} us");

    // Idle phase: build free headroom and level wear in the background.
    let target = ssc.free_blocks() + 24;
    let gc_time = ssc.background_collect(target).unwrap();
    let mut wl_time = flashtier::simkit::Duration::ZERO;
    for _ in 0..4 {
        wl_time += ssc.wear_level(4).unwrap();
    }
    println!(
        "idle work: background GC {} (now {} free), wear-leveling {} (diff {})",
        gc_time,
        ssc.free_blocks(),
        wl_time,
        ssc.wear().wear_difference()
    );

    // The same burst right after idle work sees fewer collection stalls.
    let (idle_avg, idle_worst) = burst(&mut ssc, &mut rng);
    println!("burst after idle help:   avg {idle_avg} us, worst {idle_worst} us");
    assert!(
        idle_avg <= busy_avg,
        "background work should cut request-path GC"
    );

    // Content introspection with the extended exists.
    let mut dirty_page = page.clone();
    dirty_page[0] = 0xD;
    ssc.write_dirty(42, &dirty_page).unwrap();
    let (meta, _) = ssc.exists_meta(0, 128);
    let newest = meta.iter().max_by_key(|m| m.write_seq).unwrap();
    println!(
        "exists_meta over [0,128): {} cached blocks, newest is lba {} (dirty: {})",
        meta.len(),
        newest.lba,
        newest.dirty
    );
    assert_eq!(newest.lba, 42);
    assert!(newest.dirty);
}
