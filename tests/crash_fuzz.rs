//! Crash-point recovery fuzzer.
//!
//! Scripted power failures fire *inside* the SSC's consistency machinery —
//! mid-group-commit, mid-checkpoint (clean and torn), mid-merge and
//! mid-destage — while a seeded workload runs through a full cache system.
//! After every crash the system recovers and a shadow model checks the
//! paper's guarantees:
//!
//! * no acknowledged write is ever lost (write-back: dirty data is durable;
//!   write-through: the disk is authoritative),
//! * the one in-flight operation may land old or new, never corrupt and
//!   never some third version,
//! * recovery leaves the system fully operational.
//!
//! The native write-back cache has no SSC crash sites; it is fuzzed by
//! crashing at random operation boundaries instead, which its per-change
//! durable metadata must survive exactly.

use flashtier::cachemgr::{
    CacheSystem, CmError, FlashTierWb, FlashTierWt, NativeCache, NativeConsistency, NativeMode,
};
use flashtier::disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier::flashsim::DataMode;
use flashtier::ftl::{HybridFtl, SsdConfig};
use flashtier::ssc::{CrashSite, ShardedSsc, Ssc, SscConfig, SscDevice, SscError};
use std::collections::HashMap;

const BLOCK: usize = 512;
const SPAN: u64 = 48;
const WARM_OPS: u64 = 30;
const FUZZ_OPS: u64 = 600;
const POST_OPS: u64 = 60;

/// Campaign-count multiplier from `FLASHTIER_FUZZ_SCALE` (default 1).
/// The scheduled deep-CI job sets it to 3 to run longer campaigns than
/// the per-PR gate can afford; any positive integer works locally.
fn fuzz_scale() -> u64 {
    std::env::var("FLASHTIER_FUZZ_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn encode(lba: u64, version: u64) -> Vec<u8> {
    let mut data = vec![(lba as u8) ^ (version as u8); BLOCK];
    data[0..8].copy_from_slice(&lba.to_le_bytes());
    data[8..16].copy_from_slice(&version.to_le_bytes());
    data
}

fn decode(lba: u64, data: &[u8]) -> Option<u64> {
    if data.iter().all(|&b| b == 0) {
        return None;
    }
    let got_lba = u64::from_le_bytes(data[0..8].try_into().unwrap());
    let got_ver = u64::from_le_bytes(data[8..16].try_into().unwrap());
    assert_eq!(got_lba, lba, "read returned another block's data");
    assert_eq!(
        data,
        encode(got_lba, got_ver).as_slice(),
        "payload corrupted"
    );
    Some(got_ver)
}

fn disk() -> Disk {
    Disk::new(DiskConfig::small_test(), DiskDataMode::Store)
}

/// `crash_and_recover` is inherent on each manager, not on [`CacheSystem`].
trait CrashRecover: CacheSystem {
    fn power_cycle(&mut self) -> Result<(), CmError>;
}

impl<D: SscDevice> CrashRecover for FlashTierWt<D> {
    fn power_cycle(&mut self) -> Result<(), CmError> {
        self.crash_and_recover().map(|_| ())
    }
}

impl<D: SscDevice> CrashRecover for FlashTierWb<D> {
    fn power_cycle(&mut self) -> Result<(), CmError> {
        self.crash_and_recover().map(|_| ())
    }
}

fn config() -> SscConfig {
    let mut config = SscConfig::small_test();
    // Checkpoint often enough that the Checkpoint/CheckpointTorn sites are
    // reachable within one campaign.
    config.checkpoint_write_interval = 30;
    config
}

/// Reads `lba` and asserts it holds exactly `shadow`'s version, except for
/// the one in-flight `(lba, new_version)` pair, which may legally be old or
/// new.
fn check_exact<S: CacheSystem>(
    system: &mut S,
    shadow: &HashMap<u64, u64>,
    inflight: Option<(u64, u64)>,
    lba: u64,
    context: &str,
) {
    let (data, _) = system
        .read(lba)
        .unwrap_or_else(|e| panic!("{context}: read({lba}) failed after recovery: {e}"));
    let got = decode(lba, &data);
    let acked = shadow.get(&lba).copied();
    if let Some((in_lba, new_version)) = inflight {
        if in_lba == lba {
            assert!(
                got == acked || got == Some(new_version),
                "{context}: in-flight lba {lba} read {got:?}, \
                 want acked {acked:?} or in-flight {new_version}"
            );
            return;
        }
    }
    assert_eq!(
        got, acked,
        "{context}: lba {lba} lost or served a stale acknowledged write"
    );
}

/// One fuzz campaign against an SSC-backed system: warm up, arm `site`
/// (via the `arm` hook, which may target a specific shard), run until the
/// power failure fires (or the op budget runs out), recover, then sweep
/// the whole span against the shadow model and keep operating. Returns
/// whether the armed crash actually fired.
fn ssc_campaign<S, A, Dis>(
    mut system: S,
    mut arm: A,
    mut disarm: Dis,
    seed: u64,
    site: CrashSite,
) -> bool
where
    S: CrashRecover,
    A: FnMut(&mut S, CrashSite, u64),
    Dis: FnMut(&mut S),
{
    let mut rng = seed
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
        .wrapping_add(site as u64)
        | 1;
    let mut shadow: HashMap<u64, u64> = HashMap::new();
    let mut version = 0u64;
    let mut inflight: Option<(u64, u64)> = None;

    let op = |system: &mut S,
              shadow: &mut HashMap<u64, u64>,
              rng: &mut u64,
              version: &mut u64|
     -> Result<(), (u64, Option<u64>)> {
        let lba = lcg(rng) % SPAN;
        if lcg(rng).is_multiple_of(3) {
            match system.read(lba) {
                Ok((data, _)) => {
                    let got = decode(lba, &data);
                    assert_eq!(
                        got,
                        shadow.get(&lba).copied(),
                        "seed {seed} {site:?}: stale read before any crash"
                    );
                    Ok(())
                }
                // A read modifies no logical state: recovery must still
                // serve the acknowledged version.
                Err(CmError::Ssc(SscError::PowerLoss)) => Err((lba, None)),
                Err(e) => panic!("seed {seed} {site:?}: read({lba}): {e}"),
            }
        } else {
            *version += 1;
            match system.write(lba, &encode(lba, *version)) {
                Ok(_) => {
                    shadow.insert(lba, *version);
                    Ok(())
                }
                Err(CmError::Ssc(SscError::PowerLoss)) => Err((lba, Some(*version))),
                Err(e) => panic!("seed {seed} {site:?}: write({lba}): {e}"),
            }
        }
    };

    for _ in 0..WARM_OPS {
        op(&mut system, &mut shadow, &mut rng, &mut version)
            .expect("no crash can fire before arming");
    }
    let after = lcg(&mut rng) % 3;
    arm(&mut system, site, after);
    let mut fired = false;
    for _ in 0..FUZZ_OPS {
        if let Err((lba, wrote)) = op(&mut system, &mut shadow, &mut rng, &mut version) {
            inflight = wrote.map(|v| (lba, v));
            fired = true;
            break;
        }
    }
    if !fired {
        disarm(&mut system);
    }

    system
        .power_cycle()
        .unwrap_or_else(|e| panic!("seed {seed} {site:?}: recovery failed: {e}"));
    let context = format!("seed {seed} {site:?} (fired: {fired})");
    for lba in 0..SPAN {
        check_exact(&mut system, &shadow, inflight, lba, &context);
    }

    // Fully operational after recovery: the workload continues and stays
    // exact (the in-flight block is overwritten or re-read consistently).
    shadow.retain(|&lba, _| inflight.map(|(l, _)| l != lba).unwrap_or(true));
    if let Some((lba, _)) = inflight {
        let (data, _) = system.read(lba).expect("in-flight block readable");
        if let Some(v) = decode(lba, &data) {
            shadow.insert(lba, v);
        }
        version += 1;
        system.write(lba, &encode(lba, version)).unwrap();
        shadow.insert(lba, version);
    }
    for _ in 0..POST_OPS {
        op(&mut system, &mut shadow, &mut rng, &mut version)
            .expect("no crash is armed after recovery");
    }
    fired
}

/// Runs `seeds`-many campaigns per site and demands every site actually
/// fired its power failure in most of them.
fn fuzz_ssc_system<S, A, Dis, B>(mut build: B, arm: A, disarm: Dis, sites: &[CrashSite], seeds: u64)
where
    S: CrashRecover,
    B: FnMut() -> S,
    A: FnMut(&mut S, CrashSite, u64) + Copy,
    Dis: FnMut(&mut S) + Copy,
{
    for &site in sites {
        let fired = (0..seeds)
            .filter(|&seed| ssc_campaign(build(), arm, disarm, seed, site))
            .count();
        assert!(
            fired * 2 > seeds as usize,
            "{site:?}: power failure fired in only {fired}/{seeds} campaigns — \
             the workload no longer reaches this site"
        );
    }
}

#[test]
fn flashtier_wt_survives_crashes_at_every_site() {
    // Write-through never issues `clean`, so the Clean site is unreachable.
    let sites = [
        CrashSite::GroupCommit,
        CrashSite::Checkpoint,
        CrashSite::CheckpointTorn,
        CrashSite::Merge,
    ];
    fuzz_ssc_system(
        || FlashTierWt::new(Ssc::new(config()), disk()),
        |s: &mut FlashTierWt, site, after| s.ssc_mut().arm_crash(site, after),
        |s: &mut FlashTierWt| s.ssc_mut().disarm_crash(),
        &sites,
        15 * fuzz_scale(),
    );
}

#[test]
fn flashtier_wb_survives_crashes_at_every_site() {
    let sites = [
        CrashSite::GroupCommit,
        CrashSite::Checkpoint,
        CrashSite::CheckpointTorn,
        CrashSite::Merge,
        CrashSite::Clean,
    ];
    fuzz_ssc_system(
        || FlashTierWb::new(Ssc::new(config()), disk()),
        |s: &mut FlashTierWb, site, after| s.ssc_mut().arm_crash(site, after),
        |s: &mut FlashTierWb| s.ssc_mut().disarm_crash(),
        &sites,
        12 * fuzz_scale(),
    );
}

#[test]
fn native_wb_survives_crashes_at_operation_boundaries() {
    for seed in 0..60u64 * fuzz_scale() {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let ssd = HybridFtl::new(SsdConfig::small_test(), DataMode::Store);
        let mut system = NativeCache::new(
            ssd,
            disk(),
            NativeMode::WriteBack,
            NativeConsistency::Durable,
        );
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        let crash_at = WARM_OPS + lcg(&mut rng) % 300;
        let mut version = 0u64;
        for i in 0..(crash_at + POST_OPS) {
            if i == crash_at {
                system
                    .crash_and_recover()
                    .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
                for lba in 0..SPAN {
                    check_exact(&mut system, &shadow, None, lba, &format!("seed {seed}"));
                }
            }
            let lba = lcg(&mut rng) % SPAN;
            if lcg(&mut rng).is_multiple_of(3) {
                let (data, _) = system.read(lba).unwrap();
                assert_eq!(
                    decode(lba, &data),
                    shadow.get(&lba).copied(),
                    "seed {seed} op {i}: lba {lba}"
                );
            } else {
                version += 1;
                system.write(lba, &encode(lba, version)).unwrap();
                shadow.insert(lba, version);
            }
        }
    }
}

/// Two hash-partitioned shards behind the write-through manager. The crash
/// is armed inside a *single* shard's machinery (the shard alternates with
/// the armed trigger count); after the whole-device power failure every
/// shard must roll forward and the full-span shadow sweep must hold — a
/// crash in one shard can never cost another shard's acknowledged writes.
#[test]
fn sharded_flashtier_wt_survives_single_shard_crashes() {
    let sites = [
        CrashSite::GroupCommit,
        CrashSite::Checkpoint,
        CrashSite::CheckpointTorn,
        CrashSite::Merge,
    ];
    fuzz_ssc_system(
        || FlashTierWt::new(ShardedSsc::new(config(), 2), disk()),
        |s: &mut FlashTierWt<ShardedSsc>, site, after| {
            let shard = (after as usize) % s.ssc().num_shards();
            s.ssc_mut().arm_crash_shard(shard, site, after);
        },
        |s: &mut FlashTierWt<ShardedSsc>| s.ssc_mut().disarm_crash(),
        &sites,
        15 * fuzz_scale(),
    );
}

/// Same single-shard crash campaigns for the write-back manager, whose
/// dirty-table rebuild additionally exercises the sharded `exists`
/// scatter-gather after every recovery.
#[test]
fn sharded_flashtier_wb_survives_single_shard_crashes() {
    let sites = [
        CrashSite::GroupCommit,
        CrashSite::Checkpoint,
        CrashSite::CheckpointTorn,
        CrashSite::Merge,
        CrashSite::Clean,
    ];
    fuzz_ssc_system(
        || FlashTierWb::new(ShardedSsc::new(config(), 2), disk()),
        |s: &mut FlashTierWb<ShardedSsc>, site, after| {
            let shard = (after as usize) % s.ssc().num_shards();
            s.ssc_mut().arm_crash_shard(shard, site, after);
        },
        |s: &mut FlashTierWb<ShardedSsc>| s.ssc_mut().disarm_crash(),
        &sites,
        12 * fuzz_scale(),
    );
}
