//! End-to-end integration tests: whole systems (manager + cache device +
//! disk) replaying generated workloads in Store mode, with data verified
//! against a shadow model — including across crashes.

use flashtier::cachemgr::{
    CacheSystem, FlashTierWb, FlashTierWt, NativeCache, NativeConsistency, NativeMode,
};
use flashtier::disksim::{Disk, DiskConfig, DiskDataMode};
use flashtier::flashsim::{DataMode, FlashConfig};
use flashtier::ftl::{HybridFtl, SsdConfig};
use flashtier::simkit::SimRng;
use flashtier::ssc::{ConsistencyMode, Ssc, SscConfig};
use std::collections::HashMap;

const VOLUME_BLOCKS: u64 = 4096;
const CACHE_BYTES: u64 = 4 << 20; // 4 MB cache

fn ssc(consistency: ConsistencyMode) -> Ssc {
    Ssc::new(
        SscConfig::ssc(FlashConfig::with_capacity_bytes(CACHE_BYTES))
            .with_data_mode(DataMode::Store)
            .with_consistency(consistency),
    )
}

fn disk() -> Disk {
    Disk::new(
        DiskConfig {
            capacity_blocks: VOLUME_BLOCKS,
            ..DiskConfig::paper_default()
        },
        DiskDataMode::Store,
    )
}

fn page(fill: u8) -> Vec<u8> {
    vec![fill; 4096]
}

/// Clustered mixed workload with a shadow model; verifies every read
/// against it and sweeps the full state at the end.
fn churn_and_verify<S: CacheSystem>(system: &mut S, ops: u64, write_fraction: f64, seed: u64) {
    let mut rng = SimRng::seed_from(seed);
    let mut shadow: HashMap<u64, u8> = HashMap::new();
    for i in 0..ops {
        // 24 hot extents of 64 blocks.
        let lba = rng.gen_range(24) * 64 + rng.gen_range(64);
        if rng.gen_bool(write_fraction) {
            let fill = (i % 251) as u8;
            system.write(lba, &page(fill)).unwrap();
            shadow.insert(lba, fill);
        } else {
            let (data, _) = system.read(lba).unwrap();
            match shadow.get(&lba) {
                Some(&fill) => assert_eq!(data, page(fill), "stale read at {lba}"),
                None => assert!(data.iter().all(|&b| b == 0), "phantom data at {lba}"),
            }
        }
    }
    for (&lba, &fill) in &shadow {
        let (data, _) = system.read(lba).unwrap();
        assert_eq!(data, page(fill), "final sweep at {lba}");
    }
}

#[test]
fn flashtier_write_through_integrity() {
    let mut system = FlashTierWt::new(ssc(ConsistencyMode::CleanAndDirty), disk());
    churn_and_verify(&mut system, 6_000, 0.5, 1);
    assert!(system.counters().read_hits > 0);
}

#[test]
fn flashtier_write_back_integrity() {
    let mut system = FlashTierWb::new(ssc(ConsistencyMode::CleanAndDirty), disk());
    churn_and_verify(&mut system, 6_000, 0.7, 2);
    assert!(
        system.counters().writebacks > 0,
        "the cleaner must have run"
    );
}

#[test]
fn native_write_back_integrity() {
    let ssd = HybridFtl::new(
        SsdConfig::paper_default(FlashConfig::with_capacity_bytes(CACHE_BYTES)),
        DataMode::Store,
    );
    let mut system = NativeCache::new(
        ssd,
        disk(),
        NativeMode::WriteBack,
        NativeConsistency::Durable,
    );
    churn_and_verify(&mut system, 6_000, 0.7, 3);
}

#[test]
fn native_write_through_integrity() {
    let ssd = HybridFtl::new(
        SsdConfig::paper_default(FlashConfig::with_capacity_bytes(CACHE_BYTES)),
        DataMode::Store,
    );
    let mut system = NativeCache::new(
        ssd,
        disk(),
        NativeMode::WriteThrough,
        NativeConsistency::None,
    );
    churn_and_verify(&mut system, 6_000, 0.5, 4);
}

#[test]
fn write_back_crash_preserves_all_dirty_data() {
    let mut system = FlashTierWb::new(ssc(ConsistencyMode::CleanAndDirty), disk());
    let mut rng = SimRng::seed_from(9);
    let mut shadow: HashMap<u64, u8> = HashMap::new();
    // Interleave several crash points into the churn.
    for round in 0..4u64 {
        for i in 0..1_500u64 {
            let lba = rng.gen_range(24) * 64 + rng.gen_range(64);
            let fill = ((round * 1500 + i) % 251) as u8;
            if rng.gen_bool(0.6) {
                system.write(lba, &page(fill)).unwrap();
                shadow.insert(lba, fill);
            } else {
                system.read(lba).unwrap();
            }
        }
        system.crash_and_recover().unwrap();
        // After recovery every write must still read back correctly: the
        // newest version came from write-dirty (durable), or was cleaned
        // and written to disk, or was refetched — never stale.
        for (&lba, &fill) in &shadow {
            let (data, _) = system.read(lba).unwrap();
            assert_eq!(data, page(fill), "lost write at {lba} after crash {round}");
        }
    }
}

#[test]
fn write_through_crash_is_instantly_usable() {
    let mut system = FlashTierWt::new(ssc(ConsistencyMode::CleanAndDirty), disk());
    churn_and_verify(&mut system, 3_000, 0.5, 5);
    let hits_before = system.counters().read_hits;
    system.crash_and_recover().unwrap();
    // The cache still hits after recovery (clean data was persisted).
    let mut rng = SimRng::seed_from(5);
    let mut hits = 0;
    for _ in 0..500 {
        let lba = rng.gen_range(24) * 64 + rng.gen_range(64);
        if system.read(lba).is_ok() {
            hits += 1;
        }
    }
    assert_eq!(hits, 500, "reads served (cache or disk)");
    assert!(
        system.counters().read_hits > hits_before,
        "some hits came from recovered cache"
    );
}

#[test]
fn scattered_dirty_overload_degrades_gracefully() {
    // Pathological anti-cache workload: uniform random dirty writes over a
    // span far larger than the cache, never clustered. The system must
    // keep serving (cleaning as needed) and never corrupt data or panic.
    let mut system = FlashTierWb::new(ssc(ConsistencyMode::CleanAndDirty), disk());
    let mut rng = SimRng::seed_from(13);
    let mut shadow: HashMap<u64, u8> = HashMap::new();
    for i in 0..8_000u64 {
        let lba = rng.gen_range(VOLUME_BLOCKS);
        let fill = (i % 251) as u8;
        system.write(lba, &page(fill)).unwrap();
        shadow.insert(lba, fill);
    }
    assert!(system.counters().writebacks > 0);
    for (&lba, &fill) in shadow.iter().take(1_000) {
        let (data, _) = system.read(lba).unwrap();
        assert_eq!(data, page(fill), "lba {lba}");
    }
}

#[test]
fn ssc_beats_ssd_on_write_heavy_churn() {
    // The headline claim at integration scale: same churn, same disk, the
    // SSC-based system spends less simulated time than the SSD-based one.
    let mut ft = FlashTierWt::new(ssc(ConsistencyMode::None), disk());
    let ssd = HybridFtl::new(
        SsdConfig::paper_default(FlashConfig::with_capacity_bytes(CACHE_BYTES)),
        DataMode::Store,
    );
    let mut native = NativeCache::new(
        ssd,
        disk(),
        NativeMode::WriteThrough,
        NativeConsistency::None,
    );

    let mut rng = SimRng::seed_from(21);
    let mut ft_time = 0u64;
    let mut native_time = 0u64;
    // Warm both, then measure sustained overwrite churn.
    for i in 0..20_000u64 {
        let lba = rng.gen_range(16) * 64 + rng.gen_range(64);
        let fill = page((i % 251) as u8);
        let a = ft.write(lba, &fill).unwrap();
        let b = native.write(lba, &fill).unwrap();
        if i >= 4_000 {
            ft_time += a.as_micros();
            native_time += b.as_micros();
        }
    }
    assert!(
        ft_time < native_time,
        "silent eviction should beat copy-GC: {ft_time} vs {native_time}"
    );
}
