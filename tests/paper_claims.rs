//! The paper's three headline claims, verified end to end at the default
//! experiment scale. These replay full workloads, so they take a couple of
//! minutes — run explicitly with:
//!
//! ```text
//! cargo test --release --test paper_claims -- --ignored
//! ```
//!
//! (The fast per-figure smoke checks live in `tests/experiments_smoke.rs`.)

use flashtier_bench::experiments::{fig3_performance, fig5_recovery, gc_experiment, table4_memory};

/// "FlashTier reduces total memory usage by more than 60% compared to
/// existing systems using an SSD cache."
#[test]
#[ignore = "full-scale replay; run with --ignored"]
fn claim_memory_reduction_over_60_percent() {
    let rows = table4_memory(1.0);
    for r in &rows {
        let native_total = r.device_full[0] + r.host_full[0];
        let ssc_total = r.device_full[1] + r.host_full[1];
        let ssc_r_total = r.device_full[2] + r.host_full[1];
        let ssc_saving = 1.0 - ssc_total as f64 / native_total as f64;
        let ssc_r_saving = 1.0 - ssc_r_total as f64 / native_total as f64;
        assert!(
            ssc_saving > 0.60,
            "{}: SSC saves only {:.0}%",
            r.workload,
            ssc_saving * 100.0
        );
        assert!(
            ssc_r_saving > 0.55,
            "{}: SSC-R saves only {:.0}%",
            r.workload,
            ssc_r_saving * 100.0
        );
    }
}

/// "FlashTier's free space management improves performance by up to 167%"
/// (Figure 3: SSC-R write-back vs native write-back on write-intensive
/// workloads) and performs comparably on read-intensive ones.
#[test]
#[ignore = "full-scale replay; run with --ignored"]
fn claim_performance_improvement() {
    let rows = fig3_performance(1.0);
    // Write-heavy: homes and mail must show a substantial SSC-R WB win.
    let homes = &rows[0];
    assert!(
        homes.ssc_r_wb / homes.native_wb > 1.6,
        "homes SSC-R WB should win by >60%: {:.0}%",
        100.0 * homes.ssc_r_wb / homes.native_wb
    );
    let mail = &rows[1];
    assert!(
        mail.ssc_r_wb / mail.native_wb > 1.3,
        "mail SSC-R WB should win by >30%: {:.0}%",
        100.0 * mail.ssc_r_wb / mail.native_wb
    );
    // Read-heavy: within 25% of native either way.
    for r in &rows[2..] {
        for (label, pct) in r.percents() {
            assert!(
                (75.0..=135.0).contains(&pct),
                "{} {label} diverged from native: {pct:.0}%",
                r.workload
            );
        }
    }
}

/// "and requires up to 57% fewer erase cycles than an SSD cache" (Table 5,
/// write-intensive workloads).
#[test]
#[ignore = "full-scale replay; run with --ignored"]
fn claim_erase_reduction() {
    let rows = gc_experiment(1.0);
    let homes = &rows[0];
    let reduction = 1.0 - homes.devices[2].erases as f64 / homes.devices[0].erases as f64;
    assert!(
        reduction > 0.35,
        "homes SSC-R should erase >35% less: {:.0}%",
        reduction * 100.0
    );
    // SSC sits between SSD and SSC-R on write-heavy workloads.
    assert!(homes.devices[1].erases < homes.devices[0].erases);
    assert!(homes.devices[2].erases < homes.devices[1].erases);
}

/// "FlashTier can recover a 100 GB cache in less than 2.4 seconds, much
/// faster than existing systems" — checked through the full-scale model
/// (the same arithmetic the paper's own estimate rests on).
#[test]
#[ignore = "full-scale replay; run with --ignored"]
fn claim_fast_recovery() {
    let rows = fig5_recovery(1.0);
    let proj = rows.iter().find(|r| r.workload == "proj").unwrap();
    assert!(
        proj.cache_bytes_full > 100 << 30,
        "proj cache is 100 GB-class"
    );
    assert!(
        proj.full_scale[0].as_secs_f64() < 3.0,
        "100 GB recovery should be seconds: {}",
        proj.full_scale[0]
    );
    assert!(proj.full_scale[0].as_micros() * 5 < proj.full_scale[1].as_micros());
    assert!(proj.full_scale[1] < proj.full_scale[2]);
}
