//! Smoke tests over the full experiment pipeline at extreme shrink: every
//! table/figure function must produce structurally sound results, and the
//! robust qualitative claims must hold even at tiny scale.

use flashtier_bench::experiments::*;

/// Extreme shrink multiplier: experiments finish in a few seconds total.
const TINY: f64 = 25.0;

#[test]
fn fig3_all_systems_produce_throughput() {
    let rows = fig3_performance(TINY * 2.0);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(r.native_wb > 0.0, "{} native", r.workload);
        for (label, pct) in r.percents() {
            assert!(pct > 10.0, "{} {label} collapsed: {pct}%", r.workload);
        }
    }
    // Write-back FlashTier must beat native write-back on the most
    // write-intensive workload even at tiny scale.
    let homes = &rows[0];
    assert!(
        homes.ssc_r_wb > homes.native_wb,
        "SSC-R WB should win on homes: {} vs {}",
        homes.ssc_r_wb,
        homes.native_wb
    );
}

#[test]
fn fig4_consistency_costs_are_bounded_percentages() {
    let rows = fig4_consistency(TINY * 2.0);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        for pct in [r.native_d_pct, r.flashtier_d_pct, r.flashtier_cd_pct] {
            assert!((20.0..=115.0).contains(&pct), "{}: {pct}%", r.workload);
        }
        // Consistency can only slow the same architecture down (with a
        // little measurement slack).
        assert!(r.flashtier_d_pct <= 110.0);
    }
}

#[test]
fn fig5_recovery_orderings() {
    let rows = fig5_recovery(TINY * 2.0);
    for r in &rows {
        // Measured recovery is fast and nonzero; the ordering claims are
        // checked on the full-scale model (page-rounding floors distort
        // toy-sized measured caches).
        assert!(r.flashtier_measured.as_micros() > 0, "{}", r.workload);
        assert!(
            r.native_measured[0] < r.native_measured[1],
            "{}",
            r.workload
        );
        assert!(r.full_scale[0] < r.full_scale[1], "{}", r.workload);
        assert!(r.full_scale[1] < r.full_scale[2], "{}", r.workload);
    }
    // Bigger caches take longer to recover.
    assert!(rows[3].full_scale[0] > rows[0].full_scale[0]);
}

#[test]
fn gc_experiment_wear_shape() {
    let rows = gc_experiment(TINY * 2.0);
    for r in &rows {
        for d in &r.devices {
            assert!(d.iops > 0.0, "{} {}", r.workload, d.device);
            assert!(
                d.write_amp >= 1.0,
                "{} {} WA {}",
                r.workload,
                d.device,
                d.write_amp
            );
            assert!((0.0..=100.0).contains(&d.miss_rate_pct));
        }
        // SSC-R never amplifies more than SSC (more log blocks, fewer
        // full merges).
        assert!(
            r.devices[2].write_amp <= r.devices[1].write_amp + 0.3,
            "{}: SSC-R {} vs SSC {}",
            r.workload,
            r.devices[2].write_amp,
            r.devices[1].write_amp
        );
    }
    // On the most write-intensive workload the SSC devices erase less.
    let homes = &rows[0];
    assert!(
        homes.devices[2].erases < homes.devices[0].erases,
        "SSC-R erases less than SSD"
    );
}

#[test]
fn table4_memory_orderings() {
    let rows = table4_memory(TINY * 4.0);
    assert_eq!(rows.len(), 5, "four workloads + proj-50");
    for r in &rows {
        // SSC-R needs more device memory than SSC (reserved page mappings).
        assert!(r.device_full[2] > r.device_full[1], "{}", r.workload);
        assert!(
            r.device_measured[2] > r.device_measured[1],
            "{}",
            r.workload
        );
        // FlashTier host memory is far below native.
        assert!(r.host_full[1] * 4 < r.host_full[0], "{}", r.workload);
        assert!(r.host_measured[1] < r.host_measured[0], "{}", r.workload);
    }
    // proj-50 doubles proj's cache and memory.
    let proj = &rows[3];
    let proj50 = &rows[4];
    assert!(proj50.cache_bytes_full > proj.cache_bytes_full * 19 / 10);
}

#[test]
fn fig1_density_is_heavy_tailed() {
    let rows = fig1_density(TINY);
    for r in &rows {
        assert!(r.regions > 0);
        assert!(
            r.under_1pct + r.over_10pct <= 1.0 + 1e-9,
            "{}: fractions overlap",
            r.workload
        );
        // With enough regions the distribution spans orders of magnitude:
        // some regions nearly empty, some dense. (At extreme shrink a
        // workload can collapse into a single region.)
        if r.regions >= 8 {
            let first = r.cdf.first().unwrap().0;
            let last = r.cdf.last().unwrap().0;
            assert!(
                last / first.max(1.0) >= 10.0,
                "{}: span {first}..{last}",
                r.workload
            );
        }
    }
}

#[test]
fn table3_statistics_track_specs() {
    // Write mixes drift at extreme shrink (few runs to partition), so use
    // a moderate shrink and generous bands.
    let rows = table3_workloads(4.0);
    let write_fracs: Vec<f64> = rows.iter().map(|r| r.write_fraction).collect();
    assert!(
        write_fracs[0] > 0.85,
        "homes write-heavy: {}",
        write_fracs[0]
    );
    assert!(write_fracs[1] > 0.8, "mail write-heavy: {}", write_fracs[1]);
    assert!(write_fracs[2] < 0.15, "usr read-heavy: {}", write_fracs[2]);
    assert!(write_fracs[3] < 0.25, "proj read-heavy: {}", write_fracs[3]);
    for r in &rows {
        assert!(
            r.hot_writes_ratio >= 1.0,
            "{}: hot blocks written at least as often",
            r.workload
        );
    }
}
